"""The persistent artifact store: manifest + content-addressed blobs.

A :class:`TraceStore` is one directory::

    <root>/
      manifest.json     # logical index: key -> {kind, blob, meta, ...}
      objects/aa/<62x>  # zlib blobs addressed by SHA-256 (see blobs.py)
      tmp/              # staging for atomic writes

The **manifest** maps logical keys (``trace/aes/<cfg>/<input>``,
``evidence/...``, ``report/...``, ``checkpoint/...``, ``campaign/...``) to
entries carrying the blob address plus indexing metadata: workload name,
config fingerprint, seed, and the run's :class:`PhaseStats` snapshot where
relevant.  Entries are small JSON; bodies live in the blob layer.

Both layers write atomically (temp file + ``os.replace``), verify content
hashes on load, and fail closed with :class:`StoreCorruptionError` rather
than hand back damaged artifacts.  ``gc()`` drops blobs no manifest entry
references — deleting entries is what makes blobs collectable.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.evidence import Evidence
from repro.core.report import LeakageReport
from repro.store.blobs import BlobStore, StoreCorruptionError, StoreError
from repro.store.serialize import (
    deserialize_evidence,
    deserialize_trace,
    serialize_evidence,
    serialize_trace,
)
from repro.tracing.recorder import ProgramTrace

MANIFEST_VERSION = 1

#: Recognised entry kinds (informational; the store accepts any string).
KINDS = ("trace", "evidence", "checkpoint", "report", "campaign")


@dataclass
class Entry:
    """One manifest row: a logical key bound to a blob + metadata."""

    key: str
    kind: str
    blob: str
    size: int
    created_at: float
    meta: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "blob": self.blob, "size": self.size,
                "created_at": self.created_at, "meta": self.meta}

    @classmethod
    def from_dict(cls, key: str, data: Dict) -> "Entry":
        try:
            return cls(key=key, kind=data["kind"], blob=data["blob"],
                       size=data["size"], created_at=data["created_at"],
                       meta=data.get("meta", {}))
        except (KeyError, TypeError) as error:
            raise StoreCorruptionError(
                f"manifest entry {key!r} is malformed: {error}") from error


class TraceStore:
    """Content-addressed, versioned on-disk store for Owl artifacts."""

    def __init__(self, root: Union[str, Path], *args,
                 create: bool = True) -> None:
        if args:
            if len(args) > 1:
                raise TypeError(
                    f"TraceStore() takes at most 1 argument past 'root' "
                    f"({len(args)} given)")
            warnings.warn(
                "passing create to TraceStore() positionally is "
                "deprecated; use TraceStore(root, create=...)",
                DeprecationWarning, stacklevel=2)
            create = args[0]
        self.root = Path(root)
        manifest_exists = (self.root / "manifest.json").exists()
        if not create and not manifest_exists:
            raise StoreError(f"no store at {self.root} (missing manifest)")
        self.root.mkdir(parents=True, exist_ok=True)
        self.blobs = BlobStore(self.root)
        self.manifest_path = self.root / "manifest.json"
        self.quarantine_dir = self.root / "quarantine"
        self._entries: Dict[str, Entry] = {}
        if manifest_exists:
            self._load_manifest()
        else:
            self._save_manifest()

    # ------------------------------------------------------------------
    # manifest persistence
    # ------------------------------------------------------------------

    def _load_manifest(self) -> None:
        try:
            data = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise StoreCorruptionError(
                f"cannot read store manifest {self.manifest_path}: "
                f"{error}") from error
        if not isinstance(data, dict) or "entries" not in data:
            raise StoreCorruptionError(
                f"store manifest {self.manifest_path} has no entries table")
        version = data.get("version")
        if version != MANIFEST_VERSION:
            raise StoreError(
                f"unsupported store manifest version {version!r}")
        self._entries = {key: Entry.from_dict(key, value)
                         for key, value in data["entries"].items()}

    def _save_manifest(self) -> None:
        payload = json.dumps(
            {"version": MANIFEST_VERSION,
             "entries": {key: entry.to_dict()
                         for key, entry in sorted(self._entries.items())}},
            indent=2, sort_keys=True)
        tmp_path = self.blobs.tmp_dir / f"manifest.{os.getpid()}.tmp"
        tmp_path.write_text(payload + "\n", encoding="utf-8")
        os.replace(tmp_path, self.manifest_path)

    # ------------------------------------------------------------------
    # generic entry API
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Entry]:
        return self._entries.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self, kind: Optional[str] = None) -> List[Entry]:
        """All entries (of one *kind* if given), sorted by key."""
        return [entry for key, entry in sorted(self._entries.items())
                if kind is None or entry.kind == kind]

    def put_bytes(self, key: str, kind: str, payload: bytes,
                  meta: Optional[Dict] = None) -> Entry:
        """Store *payload* under *key* (blob write + manifest update)."""
        blob = self.blobs.put(payload)
        entry = Entry(key=key, kind=kind, blob=blob, size=len(payload),
                      created_at=time.time(), meta=dict(meta or {}))
        self._entries[key] = entry
        self._save_manifest()
        return entry

    def get_bytes(self, key: str) -> Optional[bytes]:
        """Load the verified payload under *key* (None when absent)."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        payload = self.blobs.get(entry.blob)
        if len(payload) != entry.size:
            raise StoreCorruptionError(
                f"entry {key!r} declares {entry.size} bytes but its blob "
                f"holds {len(payload)}")
        return payload

    def delete(self, key: str) -> bool:
        """Drop the manifest entry (its blob becomes gc-collectable)."""
        if key not in self._entries:
            return False
        del self._entries[key]
        self._save_manifest()
        return True

    # ------------------------------------------------------------------
    # typed artifact helpers
    # ------------------------------------------------------------------

    def put_trace(self, key: str, trace: ProgramTrace,
                  meta: Optional[Dict] = None) -> Entry:
        return self.put_bytes(key, "trace", serialize_trace(trace), meta)

    def get_trace(self, key: str) -> Optional[ProgramTrace]:
        payload = self.get_bytes(key)
        return None if payload is None else deserialize_trace(payload)

    def put_evidence(self, key: str, evidence: Evidence,
                     meta: Optional[Dict] = None,
                     kind: str = "evidence") -> Entry:
        return self.put_bytes(key, kind, serialize_evidence(evidence), meta)

    def get_evidence(self, key: str) -> Optional[Evidence]:
        payload = self.get_bytes(key)
        return None if payload is None else deserialize_evidence(payload)

    def put_report(self, key: str, report: LeakageReport,
                   meta: Optional[Dict] = None) -> Entry:
        payload = (report.to_json() + "\n").encode("utf-8")
        return self.put_bytes(key, "report", payload, meta)

    def get_report(self, key: str) -> Optional[LeakageReport]:
        payload = self.get_bytes(key)
        if payload is None:
            return None
        try:
            return LeakageReport.from_json(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                ValueError) as error:
            raise StoreCorruptionError(
                f"report entry {key!r} is malformed: {error}") from error

    def put_json(self, key: str, kind: str, obj,
                 meta: Optional[Dict] = None) -> Entry:
        payload = json.dumps(obj, indent=2, sort_keys=True).encode("utf-8")
        return self.put_bytes(key, kind, payload, meta)

    def get_json(self, key: str):
        payload = self.get_bytes(key)
        if payload is None:
            return None
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StoreCorruptionError(
                f"JSON entry {key!r} is malformed: {error}") from error

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def gc(self) -> Dict[str, int]:
        """Drop unreferenced blobs and stale temp files.

        Returns ``{"removed": n, "reclaimed_bytes": b, "kept": k}`` where
        sizes are compressed on-disk bytes.
        """
        referenced = {entry.blob for entry in self._entries.values()}
        removed = 0
        reclaimed = 0
        kept = 0
        for digest in list(self.blobs.iter_digests()):
            if digest in referenced:
                kept += 1
                continue
            reclaimed += self.blobs.delete(digest)
            removed += 1
        self.blobs.sweep_tmp()
        return {"removed": removed, "reclaimed_bytes": reclaimed,
                "kept": kept}

    def quarantine(self, key: str) -> List[str]:
        """Isolate the damaged blob behind *key* and drop every entry it
        backs.

        Blobs are content-addressed and deduplicated, so one corrupt file
        can back many logical keys — all of them are removed from the
        manifest (a later campaign run re-records them as cache misses).
        The blob file itself is moved to ``quarantine/<digest>`` rather
        than deleted, preserving the evidence for post-mortems.  Returns
        the keys that were dropped.
        """
        entry = self._entries.get(key)
        if entry is None:
            return []
        digest = entry.blob
        dropped = sorted(k for k, e in self._entries.items()
                         if e.blob == digest)
        for k in dropped:
            del self._entries[k]
        blob_path = self.blobs.path_for(digest)
        if blob_path.exists():
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(blob_path, self.quarantine_dir / digest)
        self._save_manifest()
        return dropped

    def verify(self, repair: bool = False) -> List[str]:
        """Integrity-check every entry; returns the keys that failed.

        With ``repair=True`` each failing entry is quarantined (see
        :meth:`quarantine`): the store heals to a smaller-but-sound state
        and the next campaign run transparently re-records what was lost.
        """
        bad: List[str] = []
        for key in sorted(self._entries):
            try:
                self.get_bytes(key)
            except StoreError:
                bad.append(key)
        if repair:
            for key in bad:
                self.quarantine(key)
        return bad

    def __repr__(self) -> str:
        return f"TraceStore({str(self.root)!r}, entries={len(self._entries)})"
