"""The persistent artifact store: manifest + content-addressed blobs.

A :class:`TraceStore` is one directory::

    <root>/
      manifest.json     # logical index: key -> {kind, blob, meta, ...}
      manifest.journal  # JSONL deltas not yet compacted into the manifest
      manifest.lock     # advisory flock serializing writers (see locks.py)
      objects/aa/<62x>  # zlib blobs addressed by SHA-256 (see blobs.py)
      tmp/              # staging for atomic writes

The **manifest** maps logical keys (``trace/aes/<cfg>/<input>``,
``evidence/...``, ``report/...``, ``checkpoint/...``, ``campaign/...``) to
entries carrying the blob address plus indexing metadata: workload name,
config fingerprint, seed, and the run's :class:`PhaseStats` snapshot where
relevant.  Entries are small JSON; bodies live in the blob layer.

Manifest mutations take a **journaled write path**: each ``put``/``delete``
appends one JSON line to ``manifest.journal`` under an advisory file lock
instead of rewriting the whole ``manifest.json`` (which grows with the
store and made a 30-run campaign pay O(runs) full-manifest writes).
Loading replays the journal over the manifest; :meth:`compact` folds the
journal back into one atomic ``manifest.json`` rewrite (done automatically
when the journal grows past a threshold, and cheap to call explicitly).
Because concurrent writers *append* deltas rather than clobbering each
other's snapshots, two processes can run campaigns against one store
without losing entries — the fleet-safety contract the detection service
builds on.  :meth:`batch` groups many mutations into one locked append
(one fsync), and :meth:`refresh` re-reads other writers' deltas.

Both layers write atomically (temp file + ``os.replace``), verify content
hashes on load, and fail closed with :class:`StoreCorruptionError` rather
than hand back damaged artifacts.  ``gc()`` drops blobs no manifest entry
references — deleting entries is what makes blobs collectable.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.evidence import Evidence
from repro.core.report import LeakageReport
from repro.store.blobs import BlobStore, StoreCorruptionError, StoreError
from repro.store.locks import FileLock
from repro.store.serialize import (
    deserialize_evidence,
    deserialize_trace,
    serialize_evidence,
    serialize_trace,
)
from repro.tracing.recorder import ProgramTrace

MANIFEST_VERSION = 1

#: Compact the journal back into manifest.json once it grows past this.
JOURNAL_COMPACT_BYTES = 512 * 1024

#: Recognised entry kinds (informational; the store accepts any string).
KINDS = ("trace", "evidence", "checkpoint", "report", "campaign")


@dataclass
class Entry:
    """One manifest row: a logical key bound to a blob + metadata."""

    key: str
    kind: str
    blob: str
    size: int
    created_at: float
    meta: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "blob": self.blob, "size": self.size,
                "created_at": self.created_at, "meta": self.meta}

    @classmethod
    def from_dict(cls, key: str, data: Dict) -> "Entry":
        try:
            return cls(key=key, kind=data["kind"], blob=data["blob"],
                       size=data["size"], created_at=data["created_at"],
                       meta=data.get("meta", {}))
        except (KeyError, TypeError) as error:
            raise StoreCorruptionError(
                f"manifest entry {key!r} is malformed: {error}") from error


class TraceStore:
    """Content-addressed, versioned on-disk store for Owl artifacts."""

    def __init__(self, root: Union[str, Path], *args,
                 create: bool = True, journal: bool = True) -> None:
        if args:
            if len(args) > 1:
                raise TypeError(
                    f"TraceStore() takes at most 1 argument past 'root' "
                    f"({len(args)} given)")
            warnings.warn(
                "passing create to TraceStore() positionally is "
                "deprecated; use TraceStore(root, create=...)",
                DeprecationWarning, stacklevel=2)
            create = args[0]
        self.root = Path(root)
        manifest_exists = (self.root / "manifest.json").exists()
        if not create and not manifest_exists:
            raise StoreError(f"no store at {self.root} (missing manifest)")
        self.root.mkdir(parents=True, exist_ok=True)
        self.blobs = BlobStore(self.root)
        self.manifest_path = self.root / "manifest.json"
        self.journal_path = self.root / "manifest.journal"
        self.quarantine_dir = self.root / "quarantine"
        #: journaled deltas (default) vs legacy rewrite-manifest-per-put
        self.journal_enabled = journal
        #: write-amplification accounting: full manifest.json rewrites and
        #: journal delta lines appended (the service benchmark reads these)
        self.manifest_saves = 0
        self.journal_appends = 0
        self._lock = FileLock(self.root / "manifest.lock")
        self._batch_depth = 0
        self._pending_records: List[Dict] = []
        self._dirty = False
        self._entries: Dict[str, Entry] = {}
        if manifest_exists:
            self._load_manifest()
        else:
            with self._lock:
                self._save_manifest()

    # ------------------------------------------------------------------
    # manifest persistence
    # ------------------------------------------------------------------

    def _read_disk_state(self) -> Dict[str, Entry]:
        """Manifest entries as currently on disk: snapshot + journal."""
        try:
            data = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise StoreCorruptionError(
                f"cannot read store manifest {self.manifest_path}: "
                f"{error}") from error
        if not isinstance(data, dict) or "entries" not in data:
            raise StoreCorruptionError(
                f"store manifest {self.manifest_path} has no entries table")
        version = data.get("version")
        if version != MANIFEST_VERSION:
            raise StoreError(
                f"unsupported store manifest version {version!r}")
        entries = {key: Entry.from_dict(key, value)
                   for key, value in data["entries"].items()}
        for record in self._read_journal():
            op = record.get("op")
            key = record.get("key")
            if op == "put" and isinstance(key, str):
                entries[key] = Entry.from_dict(key, record.get("entry", {}))
            elif op == "del" and isinstance(key, str):
                entries.pop(key, None)
            else:
                raise StoreCorruptionError(
                    f"manifest journal {self.journal_path} holds an "
                    f"unrecognised record: {record!r}")
        return entries

    def _read_journal(self) -> List[Dict]:
        """Replay the delta journal, tolerating one torn trailing line.

        A crash mid-append can leave a partial final line; everything
        before it is intact (appends are whole-line and serialized by the
        lock), so the partial tail is dropped rather than failing the
        load.  Garbage *between* valid lines is real corruption.
        """
        try:
            raw = self.journal_path.read_bytes()
        except FileNotFoundError:
            return []
        records: List[Dict] = []
        lines = raw.split(b"\n")
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                if index == len(lines) - 1:
                    break  # torn tail from an interrupted append
                raise StoreCorruptionError(
                    f"manifest journal {self.journal_path} is corrupt at "
                    f"line {index + 1}: {error}") from error
        return records

    def _load_manifest(self) -> None:
        with FileLock(self._lock.path, shared=True):
            self._entries = self._read_disk_state()

    def refresh(self) -> None:
        """Re-read the manifest so another writer's entries become visible.

        Pending batched records of *this* store are flushed first, so a
        refresh never drops local writes.
        """
        self._flush_journal()
        self._load_manifest()

    def _save_manifest(self) -> None:
        """Rewrite manifest.json from ``self._entries`` (caller holds lock)."""
        payload = json.dumps(
            {"version": MANIFEST_VERSION,
             "entries": {key: entry.to_dict()
                         for key, entry in sorted(self._entries.items())}},
            indent=2, sort_keys=True)
        tmp_path = self.blobs.tmp_dir / (
            f"manifest.{os.getpid()}.{threading.get_ident()}.tmp")
        tmp_path.write_text(payload + "\n", encoding="utf-8")
        os.replace(tmp_path, self.manifest_path)
        self.manifest_saves += 1

    # ------------------------------------------------------------------
    # journaled write path
    # ------------------------------------------------------------------

    def _record(self, record: Dict) -> None:
        """Queue one manifest delta; flush immediately outside a batch."""
        if not self.journal_enabled:
            # legacy write path: every mutation rewrites the whole
            # manifest (kept as the benchmark baseline and a fallback)
            if self._batch_depth == 0:
                with self._lock:
                    self._save_manifest()
            else:
                self._dirty = True
            return
        self._pending_records.append(record)
        if self._batch_depth == 0:
            self._flush_journal()

    def _flush_journal(self) -> None:
        """Durably append every pending delta in one locked write."""
        if not self.journal_enabled:
            if self._dirty:
                with self._lock:
                    self._save_manifest()
                self._dirty = False
            return
        if not self._pending_records:
            return
        lines = b"".join(
            json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
            for record in self._pending_records)
        with self._lock:
            with open(self.journal_path, "ab") as handle:
                handle.write(lines)
                handle.flush()
                os.fsync(handle.fileno())
            self.journal_appends += len(self._pending_records)
            self._pending_records = []
            if self.journal_path.stat().st_size > JOURNAL_COMPACT_BYTES:
                self._compact_locked()

    def _compact_locked(self) -> None:
        """Fold the journal into manifest.json (caller holds the lock)."""
        self._entries = self._read_disk_state()
        self._save_manifest()
        with open(self.journal_path, "wb"):
            pass  # truncate: every delta is now in the snapshot

    def flush(self) -> None:
        """Durably persist pending batched mutations now."""
        self._flush_journal()

    def compact(self) -> None:
        """Flush pending deltas and fold the journal into the manifest."""
        self._flush_journal()
        with self._lock:
            self._compact_locked()

    @contextmanager
    def batch(self):
        """Group mutations into one journal append (one lock, one fsync).

        Nestable; the outermost exit flushes.  Durability point: records
        are on disk when the batch exits (or at the next explicit
        :meth:`flush`), not per mutation — crash inside a batch loses only
        that batch's manifest entries, never previously flushed state, and
        any blobs already written are collectable garbage.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self._flush_journal()

    # ------------------------------------------------------------------
    # generic entry API
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Entry]:
        return self._entries.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self, kind: Optional[str] = None) -> List[Entry]:
        """All entries (of one *kind* if given), sorted by key."""
        return [entry for key, entry in sorted(self._entries.items())
                if kind is None or entry.kind == kind]

    def put_bytes(self, key: str, kind: str, payload: bytes,
                  meta: Optional[Dict] = None) -> Entry:
        """Store *payload* under *key* (blob write + manifest update)."""
        blob = self.blobs.put(payload)
        entry = Entry(key=key, kind=kind, blob=blob, size=len(payload),
                      created_at=time.time(), meta=dict(meta or {}))
        self._entries[key] = entry
        self._record({"op": "put", "key": key, "entry": entry.to_dict()})
        return entry

    def get_bytes(self, key: str) -> Optional[bytes]:
        """Load the verified payload under *key* (None when absent)."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        payload = self.blobs.get(entry.blob)
        if len(payload) != entry.size:
            raise StoreCorruptionError(
                f"entry {key!r} declares {entry.size} bytes but its blob "
                f"holds {len(payload)}")
        return payload

    def delete(self, key: str) -> bool:
        """Drop the manifest entry (its blob becomes gc-collectable)."""
        if key not in self._entries:
            return False
        del self._entries[key]
        self._record({"op": "del", "key": key})
        return True

    # ------------------------------------------------------------------
    # typed artifact helpers
    # ------------------------------------------------------------------

    def put_trace(self, key: str, trace: ProgramTrace,
                  meta: Optional[Dict] = None) -> Entry:
        return self.put_bytes(key, "trace", serialize_trace(trace), meta)

    def get_trace(self, key: str) -> Optional[ProgramTrace]:
        payload = self.get_bytes(key)
        return None if payload is None else deserialize_trace(payload)

    def put_evidence(self, key: str, evidence: Evidence,
                     meta: Optional[Dict] = None,
                     kind: str = "evidence") -> Entry:
        return self.put_bytes(key, kind, serialize_evidence(evidence), meta)

    def get_evidence(self, key: str) -> Optional[Evidence]:
        payload = self.get_bytes(key)
        return None if payload is None else deserialize_evidence(payload)

    def put_report(self, key: str, report: LeakageReport,
                   meta: Optional[Dict] = None) -> Entry:
        payload = (report.to_json() + "\n").encode("utf-8")
        return self.put_bytes(key, "report", payload, meta)

    def get_report(self, key: str) -> Optional[LeakageReport]:
        payload = self.get_bytes(key)
        if payload is None:
            return None
        try:
            return LeakageReport.from_json(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                ValueError) as error:
            raise StoreCorruptionError(
                f"report entry {key!r} is malformed: {error}") from error

    def put_json(self, key: str, kind: str, obj,
                 meta: Optional[Dict] = None) -> Entry:
        payload = json.dumps(obj, indent=2, sort_keys=True).encode("utf-8")
        return self.put_bytes(key, kind, payload, meta)

    def get_json(self, key: str):
        payload = self.get_bytes(key)
        if payload is None:
            return None
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StoreCorruptionError(
                f"JSON entry {key!r} is malformed: {error}") from error

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def gc(self, dry_run: bool = False) -> Dict:
        """Drop unreferenced blobs and stale temp files.

        With ``dry_run=True`` nothing is deleted: the return value lists
        what *would* go, so operators of a shared fleet store can audit a
        collection before running it.  Returns ``{"removed": n,
        "reclaimed_bytes": b, "kept": k, "candidates": [(digest, bytes),
        ...], "layout": {...}}`` where sizes are compressed on-disk bytes
        and ``layout`` reports the blob-directory layout version (legacy
        flat stores are walked too — see :meth:`BlobStore.layout`).
        """
        referenced = {entry.blob for entry in self._entries.values()}
        candidates: List = []
        kept = 0
        for digest in list(self.blobs.iter_digests()):
            if digest in referenced:
                kept += 1
                continue
            candidates.append((digest, self.blobs.disk_bytes(digest)))
        layout = self.blobs.layout()
        removed = 0
        if dry_run:
            reclaimed = sum(size for _digest, size in candidates)
        else:
            reclaimed = 0
            for digest, _size in candidates:
                reclaimed += self.blobs.delete(digest)
                removed += 1
            self.blobs.sweep_tmp()
        return {"removed": removed, "reclaimed_bytes": reclaimed,
                "kept": kept, "candidates": candidates, "layout": layout}

    def quarantine(self, key: str) -> List[str]:
        """Isolate the damaged blob behind *key* and drop every entry it
        backs.

        Blobs are content-addressed and deduplicated, so one corrupt file
        can back many logical keys — all of them are removed from the
        manifest (a later campaign run re-records them as cache misses).
        The blob file itself is moved to ``quarantine/<digest>`` rather
        than deleted, preserving the evidence for post-mortems.  Returns
        the keys that were dropped.
        """
        entry = self._entries.get(key)
        if entry is None:
            return []
        digest = entry.blob
        dropped = sorted(k for k, e in self._entries.items()
                         if e.blob == digest)
        with self.batch():
            for k in dropped:
                del self._entries[k]
                self._record({"op": "del", "key": k})
        for blob_path in (self.blobs.path_for(digest),
                          self.blobs.flat_path_for(digest)):
            if blob_path.exists():
                self.quarantine_dir.mkdir(parents=True, exist_ok=True)
                os.replace(blob_path, self.quarantine_dir / digest)
        return dropped

    def verify(self, repair: bool = False) -> List[str]:
        """Integrity-check every entry; returns the keys that failed.

        With ``repair=True`` each failing entry is quarantined (see
        :meth:`quarantine`): the store heals to a smaller-but-sound state
        and the next campaign run transparently re-records what was lost.
        """
        bad: List[str] = []
        for key in sorted(self._entries):
            try:
                self.get_bytes(key)
            except StoreError:
                bad.append(key)
        if repair:
            for key in bad:
                self.quarantine(key)
        return bad

    def __repr__(self) -> str:
        return f"TraceStore({str(self.root)!r}, entries={len(self._entries)})"
