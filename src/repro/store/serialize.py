"""Binary (de)serialisation of whole traces and evidence sets.

The A-DCFG layer already round-trips single graphs losslessly
(:mod:`repro.adcfg.serialize`); the store additionally needs the two
composite artifacts the pipeline produces:

* :class:`~repro.tracing.recorder.ProgramTrace` — kernel invocations (each
  embedding its A-DCFG), malloc records and launch records (with the full
  identifying call stack, so the paper's ``name@stack-digest`` identities
  survive the round trip);
* :class:`~repro.core.evidence.Evidence` — aligned slots with per-run
  presence bit-vectors, merged A-DCFGs and (in strict per-run sampling
  mode) the retained per-run graphs.

Both formats are **canonical**: serialising a deserialised payload
reproduces the input bytes exactly.  The campaign engine leans on that —
analysis always consumes the store's round-tripped form of an evidence
set, which is how a warm re-run is guaranteed bit-identical to the cold
run that populated the store (dict insertion orders inside fresh graphs
differ from deserialised ones; the canonical form erases the difference).

All malformed inputs raise
:class:`~repro.adcfg.serialize.SerializationError`, never a bare parsing
exception: the store loads these bytes from disk, where they are
untrusted.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.adcfg.serialize import (
    Reader,
    SerializationError,
    Writer,
    deserialize_adcfg,
    serialize_adcfg,
)
from repro.core.evidence import Evidence, EvidenceSlot
from repro.host.callstack import CallSite, CallStack
from repro.host.runtime import LaunchRecord, MallocRecord
from repro.tracing.recorder import KernelInvocation, ProgramTrace

_TRACE_MAGIC = b"OWTR"
_EVIDENCE_MAGIC = b"OWEV"
_VERSION = 1


# ----------------------------------------------------------------------
# ProgramTrace
# ----------------------------------------------------------------------

def serialize_trace(trace: ProgramTrace) -> bytes:
    """Serialise a full :class:`ProgramTrace` to bytes."""
    w = Writer()
    w.raw(_TRACE_MAGIC)
    w.pack("H", _VERSION)

    w.pack("I", len(trace.invocations))
    for inv in trace.invocations:
        w.string(inv.identity)
        w.string(inv.kernel_name)
        w.pack("I", inv.seq)
        w.pack("III", *inv.grid)
        w.pack("III", *inv.block)
        payload = serialize_adcfg(inv.adcfg)
        w.pack("I", len(payload))
        w.raw(payload)

    w.pack("I", len(trace.malloc_records))
    for record in trace.malloc_records:
        w.string(record.api)
        w.pack("QQQ", record.alloc_id, record.base, record.size)
        w.string(record.label)

    w.pack("I", len(trace.launch_records))
    for record in trace.launch_records:
        w.string(record.api)
        w.string(record.kernel_name)
        w.pack("I", record.seq)
        w.pack("III", *record.grid)
        w.pack("III", *record.block)
        w.pack("I", len(record.call_stack.frames))
        for frame in record.call_stack.frames:
            w.string(frame.filename)
            w.pack("I", frame.lineno)
            w.string(frame.function)

    return w.getvalue()


def deserialize_trace(data: bytes) -> ProgramTrace:
    """Inverse of :func:`serialize_trace` (raises ``SerializationError``)."""
    try:
        return _deserialize_trace_unchecked(data)
    except SerializationError:
        raise
    except (struct.error, IndexError, OverflowError, MemoryError) as error:
        raise SerializationError(
            f"malformed trace payload: {error}") from error


def _deserialize_trace_unchecked(data: bytes) -> ProgramTrace:
    r = Reader(data)
    if r.raw(4) != _TRACE_MAGIC:
        raise SerializationError("bad magic: not a trace payload")
    (version,) = r.unpack("H")
    if version != _VERSION:
        raise SerializationError(f"unsupported trace version {version}")

    (num_invocations,) = r.unpack("I")
    r.ensure_capacity(num_invocations, 40, "kernel invocations")
    invocations: List[KernelInvocation] = []
    for _ in range(num_invocations):
        identity = r.string()
        kernel_name = r.string()
        (seq,) = r.unpack("I")
        grid = r.unpack("III")
        block = r.unpack("III")
        (adcfg_len,) = r.unpack("I")
        adcfg = deserialize_adcfg(r.raw(adcfg_len))
        invocations.append(KernelInvocation(
            identity=identity, kernel_name=kernel_name, seq=seq,
            grid=grid, block=block, adcfg=adcfg))

    (num_mallocs,) = r.unpack("I")
    r.ensure_capacity(num_mallocs, 32, "malloc records")
    mallocs: List[MallocRecord] = []
    for _ in range(num_mallocs):
        api = r.string()
        alloc_id, base, size = r.unpack("QQQ")
        label = r.string()
        mallocs.append(MallocRecord(api=api, alloc_id=alloc_id, base=base,
                                    size=size, label=label))

    (num_launches,) = r.unpack("I")
    r.ensure_capacity(num_launches, 40, "launch records")
    launches: List[LaunchRecord] = []
    for _ in range(num_launches):
        api = r.string()
        kernel_name = r.string()
        (seq,) = r.unpack("I")
        grid = r.unpack("III")
        block = r.unpack("III")
        (num_frames,) = r.unpack("I")
        r.ensure_capacity(num_frames, 12, "call-stack frames")
        frames = []
        for _f in range(num_frames):
            filename = r.string()
            (lineno,) = r.unpack("I")
            function = r.string()
            frames.append(CallSite(filename=filename, lineno=lineno,
                                   function=function))
        launches.append(LaunchRecord(
            api=api, kernel_name=kernel_name,
            call_stack=CallStack(frames=tuple(frames)),
            grid=grid, block=block, seq=seq))

    if not r.exhausted:
        raise SerializationError("trailing bytes after trace payload")
    return ProgramTrace(invocations=invocations, malloc_records=mallocs,
                        launch_records=launches)


# ----------------------------------------------------------------------
# Evidence
# ----------------------------------------------------------------------

def _pack_presence(present: List[bool]) -> bytes:
    """Bit-pack a per-run presence vector (LSB-first within each byte)."""
    packed = bytearray((len(present) + 7) // 8)
    for index, flag in enumerate(present):
        if flag:
            packed[index // 8] |= 1 << (index % 8)
    return bytes(packed)


def _unpack_presence(packed: bytes, num_runs: int) -> List[bool]:
    if len(packed) != (num_runs + 7) // 8:
        raise SerializationError(
            f"presence vector holds {len(packed)} bytes for {num_runs} runs")
    present = [bool(packed[index // 8] & (1 << (index % 8)))
               for index in range(num_runs)]
    # tail bits beyond num_runs must be zero, or the payload was tampered
    for index in range(num_runs, len(packed) * 8):
        if packed[index // 8] & (1 << (index % 8)):
            raise SerializationError("nonzero padding in presence vector")
    return present


def serialize_evidence(evidence: Evidence) -> bytes:
    """Serialise an :class:`Evidence` (slot order is content: preserved)."""
    w = Writer()
    w.raw(_EVIDENCE_MAGIC)
    w.pack("H", _VERSION)
    w.pack("B", int(evidence.keep_per_run))
    w.pack("I", evidence.num_runs)

    w.pack("I", len(evidence.slots))
    for slot in evidence.slots:
        if len(slot.per_run_present) != evidence.num_runs:
            raise SerializationError(
                f"slot {slot.identity!r} tracks {len(slot.per_run_present)} "
                f"runs but the evidence holds {evidence.num_runs}")
        w.string(slot.identity)
        w.string(slot.kernel_name)
        w.raw(_pack_presence(slot.per_run_present))
        payload = serialize_adcfg(slot.adcfg)
        w.pack("I", len(payload))
        w.raw(payload)
        if evidence.keep_per_run:
            graphs = slot.per_run_graphs or []
            if len(graphs) != evidence.num_runs:
                raise SerializationError(
                    f"slot {slot.identity!r} retains {len(graphs)} per-run "
                    f"graphs for {evidence.num_runs} runs")
            for graph in graphs:
                if graph is None:
                    w.pack("I", 0)
                else:
                    graph_payload = serialize_adcfg(graph)
                    w.pack("I", len(graph_payload))
                    w.raw(graph_payload)
    return w.getvalue()


def deserialize_evidence(data: bytes) -> Evidence:
    """Inverse of :func:`serialize_evidence`."""
    try:
        return _deserialize_evidence_unchecked(data)
    except SerializationError:
        raise
    except (struct.error, IndexError, OverflowError, MemoryError) as error:
        raise SerializationError(
            f"malformed evidence payload: {error}") from error


def _deserialize_evidence_unchecked(data: bytes) -> Evidence:
    r = Reader(data)
    if r.raw(4) != _EVIDENCE_MAGIC:
        raise SerializationError("bad magic: not an evidence payload")
    (version,) = r.unpack("H")
    if version != _VERSION:
        raise SerializationError(f"unsupported evidence version {version}")
    (keep_flag,) = r.unpack("B")
    if keep_flag not in (0, 1):
        raise SerializationError(f"bad keep_per_run flag {keep_flag}")
    keep_per_run = bool(keep_flag)
    (num_runs,) = r.unpack("I")

    evidence = Evidence(keep_per_run=keep_per_run)
    evidence.num_runs = num_runs

    (num_slots,) = r.unpack("I")
    presence_bytes = (num_runs + 7) // 8
    r.ensure_capacity(num_slots, 12 + presence_bytes, "evidence slots")
    for _ in range(num_slots):
        identity = r.string()
        kernel_name = r.string()
        present = _unpack_presence(r.raw(presence_bytes), num_runs)
        (adcfg_len,) = r.unpack("I")
        adcfg = deserialize_adcfg(r.raw(adcfg_len))
        per_run_graphs: Optional[List] = None
        if keep_per_run:
            r.ensure_capacity(num_runs, 4, "per-run graphs")
            per_run_graphs = []
            for _g in range(num_runs):
                (graph_len,) = r.unpack("I")
                if graph_len == 0:
                    per_run_graphs.append(None)
                else:
                    per_run_graphs.append(deserialize_adcfg(r.raw(graph_len)))
        evidence.slots.append(EvidenceSlot(
            identity=identity, kernel_name=kernel_name,
            per_run_present=present, adcfg=adcfg,
            per_run_graphs=per_run_graphs))

    if not r.exhausted:
        raise SerializationError("trailing bytes after evidence payload")
    return evidence
