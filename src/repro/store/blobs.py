"""Content-addressed blob storage: the store's bottom layer.

Every artifact body (serialised trace, evidence set, report JSON) lives as
one *blob*: zlib-compressed bytes in ``objects/<aa>/<...62 hex>``, where
the full path spells the SHA-256 of the **uncompressed** payload.  The
address being a content digest gives three properties for free:

* **dedup** — identical traces (phase 2's equivalence classes, re-recorded
  runs) collapse to one object on disk;
* **corruption detection** — a load decompresses and re-hashes; any bit
  rot or partial write fails closed with :class:`StoreCorruptionError`;
* **idempotent writes** — re-putting an existing payload is a no-op.

Writes are atomic: payloads land in ``tmp/`` and are published with
``os.replace``, so a crash mid-write can leave garbage in ``tmp/`` (swept
opportunistically) but never a half-written object at a valid address.

Two directory layouts are understood.  The current layout (version 2)
shards objects by digest prefix — ``objects/ab/cdef…`` — so a fleet-scale
store never piles a million files into one directory.  The legacy flat
layout (version 1) kept every blob directly under ``objects/<64 hex>``;
flat blobs are still found by every read path and are **lazily migrated**
to their sharded address the first time they are touched (an atomic
``os.replace``, safe under concurrent readers).  ``migrate_flat()`` bulk-
migrates a whole store; :meth:`layout` reports what is on disk.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
import zlib
from pathlib import Path
from typing import Iterator, Union

# historical home of these classes; canonical definitions live in
# repro.errors so every layer shares one hierarchy
from repro.errors import StoreCorruptionError, StoreError

__all__ = ["BlobStore", "LAYOUT_VERSION", "StoreCorruptionError",
           "StoreError", "sha256_hex"]

#: Current on-disk blob layout: digest-prefix sharded directories.
LAYOUT_VERSION = 2

#: Disambiguates concurrent same-digest writes from one process: pid
#: alone is not unique when two *threads* (e.g. in-process workers) put
#: the identical payload at once — they would share a tmp path and one
#: ``os.replace`` would steal the other's file out from under it.
_TMP_SERIAL = itertools.count()


def sha256_hex(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


class BlobStore:
    """Flat content-addressed object directory with atomic publication."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.tmp_dir = self.root / "tmp"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.tmp_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        """Canonical (sharded, layout-2) path for *digest*."""
        if len(digest) != 64 or any(c not in "0123456789abcdef"
                                    for c in digest):
            raise StoreError(f"not a SHA-256 blob address: {digest!r}")
        return self.objects_dir / digest[:2] / digest[2:]

    def flat_path_for(self, digest: str) -> Path:
        """Legacy (flat, layout-1) path for *digest*."""
        if len(digest) != 64 or any(c not in "0123456789abcdef"
                                    for c in digest):
            raise StoreError(f"not a SHA-256 blob address: {digest!r}")
        return self.objects_dir / digest

    def _resolve(self, digest: str) -> Path:
        """The on-disk path holding *digest*, migrating flat blobs.

        A blob found at its legacy flat address is moved to the sharded
        address first (atomic ``os.replace``; idempotent if another
        process races us there), so every touched blob ends up in the
        current layout without a store-wide rewrite.
        """
        path = self.path_for(digest)
        if path.exists():
            return path
        flat = self.flat_path_for(digest)
        if flat.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(flat, path)
            except OSError:
                # a concurrent migration won the race; fall through to
                # whichever address now holds the blob
                pass
            if path.exists():
                return path
            return flat
        return path

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------

    def put(self, payload: bytes) -> str:
        """Store *payload*, returning its content address (idempotent)."""
        digest = sha256_hex(payload)
        path = self._resolve(digest)  # migrates a legacy flat copy
        if path.exists():
            return digest
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        compressed = zlib.compress(payload, level=6)
        tmp_path = self.tmp_dir / (
            f"{digest}.{os.getpid()}.{threading.get_ident()}."
            f"{next(_TMP_SERIAL)}.tmp")
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(compressed)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        finally:
            if tmp_path.exists():
                tmp_path.unlink()
        return digest

    def get(self, digest: str) -> bytes:
        """Load and verify the payload stored at *digest*."""
        path = self._resolve(digest)
        try:
            compressed = path.read_bytes()
        except FileNotFoundError:
            raise StoreError(f"missing blob {digest}") from None
        try:
            payload = zlib.decompress(compressed)
        except zlib.error as error:
            raise StoreCorruptionError(
                f"blob {digest} is not valid zlib data "
                f"(corrupt or truncated): {error}") from error
        actual = sha256_hex(payload)
        if actual != digest:
            raise StoreCorruptionError(
                f"blob content hash {actual} does not match its address "
                f"{digest}: on-disk corruption")
        return payload

    def has(self, digest: str) -> bool:
        return (self.path_for(digest).exists()
                or self.flat_path_for(digest).exists())

    def delete(self, digest: str) -> int:
        """Remove a blob (either layout); returns on-disk bytes reclaimed."""
        reclaimed = 0
        for path in (self.path_for(digest), self.flat_path_for(digest)):
            try:
                size = path.stat().st_size
                path.unlink()
                reclaimed += size
            except FileNotFoundError:
                continue
        return reclaimed

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def iter_digests(self) -> Iterator[str]:
        """All blob addresses currently on disk, in both layouts."""
        seen = set()
        for shard in sorted(self.objects_dir.iterdir()):
            if shard.is_dir() and len(shard.name) == 2:
                for entry in sorted(shard.iterdir()):
                    digest = shard.name + entry.name
                    if len(digest) == 64 and digest not in seen:
                        seen.add(digest)
                        yield digest
            elif shard.is_file() and len(shard.name) == 64:
                # legacy flat layout: blobs directly under objects/
                if shard.name not in seen:
                    seen.add(shard.name)
                    yield shard.name

    def iter_flat_digests(self) -> Iterator[str]:
        """Addresses still stored in the legacy flat layout."""
        for entry in sorted(self.objects_dir.iterdir()):
            if entry.is_file() and len(entry.name) == 64:
                yield entry.name

    def layout(self) -> dict:
        """What is on disk: layout version plus per-layout blob counts.

        ``version`` is :data:`LAYOUT_VERSION` once no flat blobs remain,
        1 for a purely flat store, and the string ``"1+2"`` while a lazy
        migration is still in flight.
        """
        flat = sum(1 for _ in self.iter_flat_digests())
        total = sum(1 for _ in self.iter_digests())
        sharded = total - flat
        if flat == 0:
            version = LAYOUT_VERSION
        elif sharded == 0:
            version = 1
        else:
            version = "1+2"
        return {"version": version, "sharded_blobs": sharded,
                "flat_blobs": flat}

    def migrate_flat(self) -> int:
        """Move every legacy flat blob to its sharded address.

        Returns the number of blobs migrated.  Safe under concurrent
        readers (each move is one atomic ``os.replace``; a reader that
        already resolved the flat path keeps its open file).
        """
        migrated = 0
        for digest in list(self.iter_flat_digests()):
            target = self.path_for(digest)
            target.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(self.flat_path_for(digest), target)
                migrated += 1
            except OSError:
                continue  # raced with another migrator; already moved
        return migrated

    def sweep_tmp(self) -> int:
        """Drop leftovers from interrupted writes; returns files removed."""
        removed = 0
        for stale in self.tmp_dir.glob("*.tmp"):
            try:
                stale.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def disk_bytes(self, digest: str) -> int:
        """Compressed on-disk size of one blob (0 if absent)."""
        for path in (self.path_for(digest), self.flat_path_for(digest)):
            try:
                return path.stat().st_size
            except FileNotFoundError:
                continue
        return 0
