"""Content-addressed blob storage: the store's bottom layer.

Every artifact body (serialised trace, evidence set, report JSON) lives as
one *blob*: zlib-compressed bytes in ``objects/<aa>/<...62 hex>``, where
the full path spells the SHA-256 of the **uncompressed** payload.  The
address being a content digest gives three properties for free:

* **dedup** — identical traces (phase 2's equivalence classes, re-recorded
  runs) collapse to one object on disk;
* **corruption detection** — a load decompresses and re-hashes; any bit
  rot or partial write fails closed with :class:`StoreCorruptionError`;
* **idempotent writes** — re-putting an existing payload is a no-op.

Writes are atomic: payloads land in ``tmp/`` and are published with
``os.replace``, so a crash mid-write can leave garbage in ``tmp/`` (swept
opportunistically) but never a half-written object at a valid address.
"""

from __future__ import annotations

import hashlib
import os
import zlib
from pathlib import Path
from typing import Iterator, Union

# historical home of these classes; canonical definitions live in
# repro.errors so every layer shares one hierarchy
from repro.errors import StoreCorruptionError, StoreError

__all__ = ["BlobStore", "StoreCorruptionError", "StoreError", "sha256_hex"]


def sha256_hex(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


class BlobStore:
    """Flat content-addressed object directory with atomic publication."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.tmp_dir = self.root / "tmp"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.tmp_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        if len(digest) != 64 or any(c not in "0123456789abcdef"
                                    for c in digest):
            raise StoreError(f"not a SHA-256 blob address: {digest!r}")
        return self.objects_dir / digest[:2] / digest[2:]

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------

    def put(self, payload: bytes) -> str:
        """Store *payload*, returning its content address (idempotent)."""
        digest = sha256_hex(payload)
        path = self.path_for(digest)
        if path.exists():
            return digest
        path.parent.mkdir(parents=True, exist_ok=True)
        compressed = zlib.compress(payload, level=6)
        tmp_path = self.tmp_dir / f"{digest}.{os.getpid()}.tmp"
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(compressed)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        finally:
            if tmp_path.exists():
                tmp_path.unlink()
        return digest

    def get(self, digest: str) -> bytes:
        """Load and verify the payload stored at *digest*."""
        path = self.path_for(digest)
        try:
            compressed = path.read_bytes()
        except FileNotFoundError:
            raise StoreError(f"missing blob {digest}") from None
        try:
            payload = zlib.decompress(compressed)
        except zlib.error as error:
            raise StoreCorruptionError(
                f"blob {digest} is not valid zlib data "
                f"(corrupt or truncated): {error}") from error
        actual = sha256_hex(payload)
        if actual != digest:
            raise StoreCorruptionError(
                f"blob content hash {actual} does not match its address "
                f"{digest}: on-disk corruption")
        return payload

    def has(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def delete(self, digest: str) -> int:
        """Remove a blob; returns the on-disk bytes reclaimed (0 if absent)."""
        path = self.path_for(digest)
        try:
            size = path.stat().st_size
            path.unlink()
        except FileNotFoundError:
            return 0
        return size

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def iter_digests(self) -> Iterator[str]:
        """All blob addresses currently on disk."""
        for shard in sorted(self.objects_dir.iterdir()):
            if not shard.is_dir() or len(shard.name) != 2:
                continue
            for entry in sorted(shard.iterdir()):
                digest = shard.name + entry.name
                if len(digest) == 64:
                    yield digest

    def sweep_tmp(self) -> int:
        """Drop leftovers from interrupted writes; returns files removed."""
        removed = 0
        for stale in self.tmp_dir.glob("*.tmp"):
            try:
                stale.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def disk_bytes(self, digest: str) -> int:
        """Compressed on-disk size of one blob (0 if absent)."""
        try:
            return self.path_for(digest).stat().st_size
        except FileNotFoundError:
            return 0
