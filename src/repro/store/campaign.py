"""The campaign engine: cached, resumable, diffable detection runs.

A *campaign* is one ``Owl.detect`` invocation bound to a
:class:`~repro.store.store.TraceStore`.  The engine gives the pipeline
three layers of reuse, coarse to fine:

* **report cache** — the exact (program, config, inputs) campaign already
  completed: return its stored report;
* **evidence cache** — the fixed/random evidence sets for this
  configuration exist: skip all phase-3 recording and re-analyse;
* **trace cache + checkpoints** — individual phase-1 traces are reused per
  input, and phase-3 run batches fold into checkpointed partial evidence
  every ``store_checkpoint_every`` runs, so a killed campaign resumes
  where it stopped instead of starting over.

Bit-identity contract: whenever a store is attached, the evidence handed
to the analyzer is always the store's **canonical round-tripped form**
(serialise → deserialise), for cold and warm runs alike.  Canonical bytes
are what make "warm re-run ≡ cold run" an equality of report JSON, not an
approximation — see :mod:`repro.store.serialize`.

``diff_reports`` closes the paper's detect → patch → re-audit loop: two
reports (two program versions) are joined on code location
``(leak type, kernel, block, instr)`` — *not* on kernel identity, whose
call-stack digest legitimately shifts when source lines move — and every
leak is classified as introduced, fixed, or persisting.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.evidence import Evidence
from repro.core.report import Leak, LeakageReport
from repro.errors import ConfigError, StoreError
from repro.resilience import events as resilience_events
from repro.store.fingerprint import (
    analysis_fingerprint,
    evidence_fingerprint,
    fingerprint_inputs,
    fingerprint_value,
    trace_fingerprint,
)
from repro.store.serialize import deserialize_evidence, serialize_evidence
from repro.store.store import TraceStore
from repro.tracing.recorder import ProgramTrace

SIDE_FIXED = "fixed"
SIDE_RANDOM = "random"

#: Campaign status values recorded in the manifest.
STATUS_IN_PROGRESS = "in_progress"
STATUS_COMPLETE = "complete"


def _jsonable_config(config) -> Dict:
    """OwlConfig as a JSON-safe dict (for ``owl resume`` reconstruction)."""
    return dataclasses.asdict(config)


class Campaign:
    """Store-backed context for one named program + configuration."""

    def __init__(self, store: TraceStore, name: str, config,
                 device_config=None) -> None:
        self.store = store
        self.name = name
        self.config = config
        self.device_config = device_config
        self.trace_fp = trace_fingerprint(config, device_config)
        self.evidence_fp = evidence_fingerprint(config, device_config)
        self.analysis_fp = analysis_fingerprint(config, device_config)

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------

    def input_fingerprint(self, value) -> str:
        return fingerprint_value(value)

    def inputs_fingerprint(self, input_fps: Sequence[str]) -> str:
        return fingerprint_inputs(input_fps)

    def trace_key(self, input_fp: str) -> str:
        return f"trace/{self.name}/{self.trace_fp}/{input_fp}"

    def evidence_key(self, side: str, rep_fp: Optional[str] = None) -> str:
        if side == SIDE_RANDOM:
            # the random side depends only on (seed, runs), never on which
            # representative is being analysed: all representatives share it
            return f"evidence/{self.name}/{self.evidence_fp}/random"
        return f"evidence/{self.name}/{self.evidence_fp}/fixed/{rep_fp}"

    def checkpoint_key(self, evidence_key: str) -> str:
        return "checkpoint/" + evidence_key[len("evidence/"):]

    def report_key(self, inputs_fp: str) -> str:
        return f"report/{self.name}/{self.analysis_fp}/{inputs_fp}"

    def campaign_key(self, inputs_fp: str) -> str:
        return f"campaign/{self.name}/{self.analysis_fp}/{inputs_fp}"

    # ------------------------------------------------------------------
    # self-healing loads
    # ------------------------------------------------------------------

    def _healing_load(self, loader, key: str):
        """Load through *loader*, quarantining damage instead of failing.

        Stored artifacts are a cache: when one fails its integrity check
        (bit rot, a truncated write, an injected ``blob_corruption``) the
        right response is to isolate the blob, record the degradation and
        report a miss — the pipeline then re-records the lost artifact
        exactly as if it had never been stored.
        """
        try:
            return loader(key)
        except StoreError as error:
            dropped = self.store.quarantine(key)
            resilience_events.record_degradation(
                resilience_events.STORE_QUARANTINE, "store", str(error),
                key=key, dropped=len(dropped))
            return None

    # ------------------------------------------------------------------
    # phase 1: trace cache
    # ------------------------------------------------------------------

    def load_trace(self, input_fp: str) -> Optional[ProgramTrace]:
        return self._healing_load(self.store.get_trace,
                                  self.trace_key(input_fp))

    def save_trace(self, input_fp: str, trace: ProgramTrace) -> None:
        self.store.put_trace(
            self.trace_key(input_fp), trace,
            meta={"workload": self.name, "config": self.trace_fp,
                  "input": input_fp, "seed": self.config.seed,
                  "signature": trace.signature()})

    # ------------------------------------------------------------------
    # phase 3: evidence cache + checkpoints
    # ------------------------------------------------------------------

    def load_evidence(self, key: str) -> Optional[Evidence]:
        return self._healing_load(self.store.get_evidence, key)

    def save_evidence(self, key: str, evidence: Evidence,
                      side: str) -> Evidence:
        """Persist a completed side and return its canonical form."""
        payload = serialize_evidence(evidence)
        with self.store.batch():
            self.store.put_bytes(
                key, "evidence", payload,
                meta={"workload": self.name, "config": self.evidence_fp,
                      "side": side, "seed": self.config.seed,
                      "runs": evidence.num_runs})
            self.store.delete(self.checkpoint_key(key))
        return deserialize_evidence(payload)

    def load_checkpoint(self, evidence_key: str
                        ) -> Optional[Tuple[Evidence, int]]:
        """A side's partial evidence and its completed-run count, if any."""
        key = self.checkpoint_key(evidence_key)
        entry = self.store.get(key)
        if entry is None:
            return None
        evidence = self._healing_load(self.store.get_evidence, key)
        if evidence is None:
            return None
        runs_done = int(entry.meta.get("runs_done", evidence.num_runs))
        if runs_done != evidence.num_runs:
            # a checkpoint whose body and meta disagree is useless; treat
            # it as absent rather than resuming from a wrong offset
            return None
        return evidence, runs_done

    def save_checkpoint(self, evidence_key: str, evidence: Evidence,
                        runs_done: int, total_runs: int, side: str) -> None:
        self.store.put_evidence(
            self.checkpoint_key(evidence_key), evidence, kind="checkpoint",
            meta={"workload": self.name, "config": self.evidence_fp,
                  "side": side, "seed": self.config.seed,
                  "runs_done": runs_done, "total_runs": total_runs})

    # ------------------------------------------------------------------
    # reports + campaign status
    # ------------------------------------------------------------------

    def load_report(self, inputs_fp: str) -> Optional[LeakageReport]:
        return self._healing_load(self.store.get_report,
                                  self.report_key(inputs_fp))

    def save_report(self, inputs_fp: str, report: LeakageReport,
                    stats=None) -> None:
        meta = {"workload": self.name, "config": self.analysis_fp,
                "seed": self.config.seed, "inputs": inputs_fp}
        if stats is not None:
            meta["stats"] = {
                "trace_count": stats.trace_count,
                "trace_bytes_total": stats.trace_bytes_total,
                "trace_seconds_total": stats.trace_seconds_total,
                "trace_wall_seconds": stats.trace_wall_seconds,
                "evidence_seconds": stats.evidence_seconds,
                "test_seconds": stats.test_seconds,
                "total_seconds": stats.total_seconds,
                "cached_traces": stats.cached_traces,
                "cached_runs": stats.cached_runs,
                "workers": stats.workers,
            }
        self.store.put_report(self.report_key(inputs_fp), report, meta=meta)

    def mark_started(self, inputs_fp: str) -> None:
        key = self.campaign_key(inputs_fp)
        existing = self.store.get(key)
        if existing is not None and existing.meta.get(
                "status") == STATUS_COMPLETE:
            return
        self.store.put_json(
            key, "campaign",
            {"workload": self.name, "inputs": inputs_fp,
             "config": _jsonable_config(self.config)},
            meta={"workload": self.name, "status": STATUS_IN_PROGRESS,
                  "seed": self.config.seed, "inputs": inputs_fp})

    def mark_complete(self, inputs_fp: str) -> None:
        key = self.campaign_key(inputs_fp)
        self.store.put_json(
            key, "campaign",
            {"workload": self.name, "inputs": inputs_fp,
             "config": _jsonable_config(self.config)},
            meta={"workload": self.name, "status": STATUS_COMPLETE,
                  "seed": self.config.seed, "inputs": inputs_fp,
                  "report": self.report_key(inputs_fp)})


def incomplete_campaigns(store: TraceStore) -> List:
    """Campaign entries still marked in-progress (for ``owl resume``)."""
    return [entry for entry in store.entries(kind="campaign")
            if entry.meta.get("status") != STATUS_COMPLETE]


# ----------------------------------------------------------------------
# cross-version regression diffs
# ----------------------------------------------------------------------

#: A leak's code location: the join key across program versions.
LocationKey = Tuple[str, str, str, int]


def _location_index(report: LeakageReport) -> Dict[LocationKey, Leak]:
    """Most-significant leak per (type, kernel, block, instr) location."""
    index: Dict[LocationKey, Leak] = {}
    for leak in report.leaks:
        key = (leak.leak_type.value,) + leak.location
        current = index.get(key)
        if current is None or leak.p_value < current.p_value:
            index[key] = leak
    return index


@dataclass
class RegressionDiff:
    """Classification of every leak across two reports (A = before patch,
    B = after): did the patch fix it, leave it, or make things worse?"""

    baseline_name: str
    candidate_name: str
    introduced: List[Leak] = field(default_factory=list)
    fixed: List[Leak] = field(default_factory=list)
    persisting: List[Tuple[Leak, Leak]] = field(default_factory=list)

    @property
    def is_regression(self) -> bool:
        return bool(self.introduced)

    @property
    def is_clean_fix(self) -> bool:
        return bool(self.fixed) and not self.introduced and not self.persisting

    def counts(self) -> Dict[str, int]:
        return {"introduced": len(self.introduced), "fixed": len(self.fixed),
                "persisting": len(self.persisting)}

    def to_dict(self) -> Dict:
        def leak_row(leak: Leak) -> Dict:
            return {"leak_type": leak.leak_type.value,
                    "kernel_name": leak.kernel_name, "block": leak.block,
                    "instr": leak.instr, "p_value": leak.p_value}

        return {
            "baseline": self.baseline_name,
            "candidate": self.candidate_name,
            "counts": self.counts(),
            "introduced": [leak_row(leak) for leak in self.introduced],
            "fixed": [leak_row(leak) for leak in self.fixed],
            "persisting": [{"before": leak_row(a), "after": leak_row(b)}
                           for a, b in self.persisting],
        }

    def render(self) -> str:
        lines = [
            f"Leakage regression diff: {self.baseline_name} -> "
            f"{self.candidate_name}",
            f"  introduced: {len(self.introduced)}, "
            f"fixed: {len(self.fixed)}, persisting: {len(self.persisting)}",
        ]
        for leak in self.introduced:
            lines.append("  [introduced] " + leak.render())
        for before, after in self.persisting:
            lines.append("  [persisting] " + after.render())
        for leak in self.fixed:
            lines.append("  [fixed]      " + leak.render())
        if not self.introduced and not self.persisting:
            lines.append("  candidate is leak-free at every baseline "
                         "location" if self.fixed else
                         "  both versions are leak-free")
        return "\n".join(lines)


def diff_reports(baseline: LeakageReport,
                 candidate: LeakageReport) -> RegressionDiff:
    """Classify each leak location as introduced / fixed / persisting.

    Both reports must come from the same analyzer: diffing a KS baseline
    against an MI candidate would classify every MI-only finding as
    "introduced" (and vice versa), which is a detector difference, not a
    code regression — use ``analyzer="both"``'s cross-validation section
    to compare detectors.
    """
    if baseline.analyzer != candidate.analyzer:
        raise ConfigError(
            f"cannot diff reports from different analyzers: baseline "
            f"{baseline.program_name!r} used {baseline.analyzer!r}, "
            f"candidate {candidate.program_name!r} used "
            f"{candidate.analyzer!r}")
    before = _location_index(baseline)
    after = _location_index(candidate)
    diff = RegressionDiff(baseline_name=baseline.program_name,
                          candidate_name=candidate.program_name)
    for key in sorted(before):
        if key in after:
            diff.persisting.append((before[key], after[key]))
        else:
            diff.fixed.append(before[key])
    for key in sorted(after):
        if key not in before:
            diff.introduced.append(after[key])
    return diff
