"""Advisory file locking for stores shared by a worker fleet.

Every cross-process critical section in the store — appending to the
manifest journal, compacting the journal into ``manifest.json``, loading
the manifest while a writer may be compacting — takes an advisory
``flock`` on one lock file at the store root.  Locks are advisory on
purpose: readers that predate this module keep working, and a crashed
holder releases its lock with its file descriptor, so there is no stale
lock-file recovery protocol to get wrong.

On platforms without :mod:`fcntl` the lock degrades to a no-op; the store
then offers the same single-writer guarantees it always had (each write
is still atomic via tmp+rename), just not multi-writer merge safety.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

try:  # POSIX only; the store stays usable (single-writer) without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

__all__ = ["FileLock", "locks_available"]


def locks_available() -> bool:
    """True when real advisory locks back :class:`FileLock`."""
    return fcntl is not None


class FileLock:
    """A reentrant advisory lock on one file, usable as a context manager.

    ``FileLock(path)`` is exclusive; ``FileLock(path, shared=True)`` takes
    the shared (reader) mode.  Acquisition blocks until granted.  The lock
    file itself carries no state — it exists only to be locked.
    """

    def __init__(self, path: Union[str, Path], shared: bool = False) -> None:
        self.path = Path(path)
        self.shared = shared
        self._fd = None
        self._depth = 0

    def acquire(self) -> None:
        if self._depth > 0:
            self._depth += 1
            return
        if fcntl is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            flags = fcntl.LOCK_SH if self.shared else fcntl.LOCK_EX
            fcntl.flock(self._fd, flags)
        self._depth = 1

    def release(self) -> None:
        if self._depth == 0:
            raise RuntimeError(f"lock {self.path} is not held")
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    @property
    def held(self) -> bool:
        return self._depth > 0
