"""Deterministic content fingerprints for store keys.

The store addresses artifacts by *what produced them*: a trace is keyed by
(program name, device configuration, input value); an evidence set adds the
run counts, seed and sampling mode; a report adds the analysis knobs.  All
of those must hash identically across processes and Python versions, so
``hash()`` (randomised per process) and ``repr`` of objects with memory
addresses are off the table — values are folded into SHA-256 through an
explicit, tagged, canonical encoding instead.

Configuration fingerprints are *scoped*: only the fields that can change
the artifact's bytes participate.  ``workers``, ``columnar``, ``cohort``,
``vectorized``, ``replica_batch`` and ``replica_dedup`` are deliberately
excluded everywhere — the parallel, columnar, warp-cohort, batched-KS
and replica-batching paths are proven bit-identical to their reference
implementations, so a store warmed under one of those settings is valid
under any other.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
import struct
from typing import Sequence, Tuple

import numpy as np

#: Hex digest length used in store entry keys (the blob layer keeps full
#: SHA-256; key fragments are truncated for readable manifests — 64 bits of
#: collision resistance is plenty for per-store artifact counts).
KEY_DIGEST_CHARS = 16


class FingerprintError(TypeError):
    """Raised for values with no canonical encoding (unhashable inputs)."""


def _feed(hasher, obj) -> None:
    """Fold one value into *hasher* via a tagged canonical encoding."""
    if obj is None:
        hasher.update(b"N")
    elif isinstance(obj, bool):
        hasher.update(b"b1" if obj else b"b0")
    elif isinstance(obj, int):
        text = str(obj).encode()
        hasher.update(b"i%d:" % len(text))
        hasher.update(text)
    elif isinstance(obj, float):
        hasher.update(b"f")
        hasher.update(struct.pack("<d", obj))
    elif isinstance(obj, str):
        text = obj.encode("utf-8")
        hasher.update(b"s%d:" % len(text))
        hasher.update(text)
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        data = bytes(obj)
        hasher.update(b"y%d:" % len(data))
        hasher.update(data)
    elif isinstance(obj, (tuple, list)):
        hasher.update(b"l%d:" % len(obj))
        for item in obj:
            _feed(hasher, item)
    elif isinstance(obj, (set, frozenset)):
        hasher.update(b"e%d:" % len(obj))
        for digest in sorted(fingerprint_value(item) for item in obj):
            hasher.update(digest.encode())
    elif isinstance(obj, dict):
        # items are fingerprinted individually and folded in sorted-digest
        # order so insertion order never matters
        hasher.update(b"d%d:" % len(obj))
        for digest in sorted(fingerprint_value((key, value))
                             for key, value in obj.items()):
            hasher.update(digest.encode())
    elif isinstance(obj, np.ndarray):
        array = np.ascontiguousarray(obj)
        hasher.update(b"a")
        _feed(hasher, array.dtype.str)
        _feed(hasher, tuple(int(n) for n in array.shape))
        hasher.update(array.tobytes())
    elif isinstance(obj, np.generic):
        _feed(hasher, obj.item())
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        hasher.update(b"c")
        _feed(hasher, type(obj).__qualname__)
        _feed(hasher, dataclasses.asdict(obj))
    else:
        # last resort: pickle is deterministic for plain data objects; an
        # unpicklable value has no stable identity and cannot be cached
        try:
            payload = pickle.dumps(obj, protocol=4)
        except Exception as error:
            raise FingerprintError(
                f"cannot fingerprint {type(obj).__name__!r} value for the "
                f"store: {error}") from error
        hasher.update(b"p%d:" % len(payload))
        hasher.update(payload)


def fingerprint_value(obj) -> str:
    """Stable hex digest of an arbitrary (plain-data) Python value."""
    hasher = hashlib.sha256()
    _feed(hasher, obj)
    return hasher.hexdigest()[:KEY_DIGEST_CHARS]


def fingerprint_inputs(input_fingerprints: Sequence[str]) -> str:
    """Digest of an ordered collection of per-input fingerprints."""
    return fingerprint_value(list(input_fingerprints))


# ----------------------------------------------------------------------
# configuration fingerprints (scoped)
# ----------------------------------------------------------------------

#: OwlConfig fields that change the *bytes of a single recorded trace*.
#: (None today beyond the device config: a trace depends only on the
#: device model and the program input.)
_TRACE_FIELDS: Tuple[str, ...] = ()

#: OwlConfig fields that change the *content of an evidence set* on top of
#: the trace-level ones: how many runs, which random draws, and whether
#: per-run graphs are retained.
_EVIDENCE_FIELDS = ("fixed_runs", "random_runs", "seed", "sampling")

#: OwlConfig fields that change the *analysis verdicts* on top of the
#: evidence-level ones.  The detector choice lives here and NOT in the
#: evidence scope: ks/mi/both campaigns share recorded traces and
#: evidence but cache their reports independently.
#: The adaptive scheduler's knobs are analysis scope: an adaptive
#: campaign shares traces and (checkpointed) evidence with the classic
#: full-budget campaign but caches its report separately, because an
#: early-stopped report legitimately carries different replica counts.
_ANALYSIS_FIELDS = ("confidence", "sample_size_cap", "test",
                    "offset_granularity", "quantify", "always_analyze",
                    "analyze_all_representatives", "dedup_by_location",
                    "analyzer", "mi_bias_correction", "mi_min_bits",
                    "adaptive", "adaptive_rounds", "adaptive_alpha_spend")


def _device_dict(device_config) -> dict:
    if device_config is None:
        return {}
    if dataclasses.is_dataclass(device_config):
        fields = dataclasses.asdict(device_config)
        # resilience knob, not a device model parameter: tripping the
        # budget re-executes the launch on the bit-identical per-warp
        # engine, so the artifact bytes cannot depend on it
        fields.pop("cohort_step_budget", None)
        return fields
    raise FingerprintError(
        f"cannot fingerprint device config of type "
        f"{type(device_config).__name__!r}")


def _config_scope(config, fields) -> dict:
    return {name: getattr(config, name) for name in fields}


def trace_fingerprint(config, device_config=None) -> str:
    """Fingerprint of everything (besides program + input) shaping a trace."""
    return fingerprint_value({
        "scope": "trace",
        "device": _device_dict(device_config),
        "config": _config_scope(config, _TRACE_FIELDS),
    })


def evidence_fingerprint(config, device_config=None) -> str:
    """Fingerprint of everything (besides program + rep) shaping evidence."""
    return fingerprint_value({
        "scope": "evidence",
        "device": _device_dict(device_config),
        "config": _config_scope(config, _TRACE_FIELDS + _EVIDENCE_FIELDS),
    })


def analysis_fingerprint(config, device_config=None) -> str:
    """Fingerprint of everything (besides program + inputs) shaping a
    final report."""
    return fingerprint_value({
        "scope": "analysis",
        "device": _device_dict(device_config),
        "config": _config_scope(
            config, _TRACE_FIELDS + _EVIDENCE_FIELDS + _ANALYSIS_FIELDS),
    })
