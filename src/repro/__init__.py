"""Reproduction of *Owl: Differential-based Side-Channel Leakage Detection
for CUDA Applications* (DSN 2024).

Top-level convenience exports; see the subpackages for the full API:

* :mod:`repro.core` — the Owl pipeline (alignment, KS tests, leakage tests);
* :mod:`repro.analysis` — detector modalities beyond the default KS test:
  the mutual-information analyzer and KS-vs-MI cross-validation;
* :mod:`repro.gpusim` — the SIMT GPU simulator substrate;
* :mod:`repro.host` — the CUDA host runtime and Pin-like tracer;
* :mod:`repro.tracing` — the NVBit-like device tracing layer;
* :mod:`repro.adcfg` — attributed dynamic control-flow graphs;
* :mod:`repro.apps` — the evaluated workloads (libgpucrypto, minitorch,
  nvjpeg, dummy);
* :mod:`repro.baselines` — DATA-style and pitchfork-style comparators;
* :mod:`repro.store` — persistent trace store + campaign engine
  (content-addressed artifacts, resumable runs, regression diffs);
* :mod:`repro.errors` — the unified exception hierarchy rooted at
  :class:`OwlError`;
* :mod:`repro.resilience` — fault-tolerant campaigns: worker supervision
  (:class:`RetryPolicy`), structured degradations
  (:class:`DegradationEvent`) and deterministic fault injection
  (:class:`FaultPlan`).
"""

# repro.core must initialise before repro.analysis: the pipeline module
# imports the analysis package itself, so starting from the analysis side
# would re-enter a partially initialised repro.core.
from repro.core import Owl, OwlConfig, OwlResult
from repro.analysis import cross_validate, ks_view, mi_view
from repro.analysis.mi import MIAnalyzer, MIResult, mi_test
from repro.core.report import Leak, LeakType, LeakageReport
from repro.errors import (
    AuthError,
    CampaignError,
    CohortEnvelopeError,
    ConfigError,
    OwlError,
    QuotaError,
    SerializationError,
    ServiceConnectionError,
    ServiceError,
    StoreCorruptionError,
    StoreError,
    TraceError,
    WorkerError,
)
from repro.gpusim import Device, DeviceConfig, kernel
from repro.host import CudaRuntime
from repro.resilience import DegradationEvent, FaultPlan, RetryPolicy
from repro.store import RegressionDiff, TraceStore, diff_reports
from repro.tracing import ProgramTrace, TraceRecorder

__version__ = "1.0.0"

__all__ = [
    "AuthError",
    "CampaignError",
    "CohortEnvelopeError",
    "ConfigError",
    "CudaRuntime",
    "DegradationEvent",
    "Device",
    "DeviceConfig",
    "FaultPlan",
    "Leak",
    "LeakType",
    "LeakageReport",
    "MIAnalyzer",
    "MIResult",
    "Owl",
    "OwlConfig",
    "OwlError",
    "OwlResult",
    "ProgramTrace",
    "RegressionDiff",
    "QuotaError",
    "RetryPolicy",
    "SerializationError",
    "ServiceConnectionError",
    "ServiceError",
    "StoreCorruptionError",
    "StoreError",
    "TraceError",
    "TraceRecorder",
    "TraceStore",
    "WorkerError",
    "__version__",
    "cross_validate",
    "diff_reports",
    "kernel",
    "ks_view",
    "mi_test",
    "mi_view",
]
