"""Per-chunk worker supervision: retry, deadline, degrade, keep the rest.

The original pool dispatch was all-or-nothing: any infrastructure failure
(a worker death, a sandbox without ``fork``) threw away every completed
chunk and re-ran the whole batch serially — and a ``PicklingError`` raised
*inside* a worker (a real bug) was indistinguishable from a submission
failure, so it was silently swallowed by that fallback.

:class:`ChunkSupervisor` replaces it with three separations:

* **submit-time vs result-time errors** — chunk payloads are pickled by the
  supervisor itself before dispatch; a payload that cannot be pickled
  degrades that one chunk to in-process execution, while any exception a
  worker *returns* (including ``PicklingError`` from worker code) is a real
  bug and propagates unchanged;
* **per-chunk retry under a** :class:`~repro.resilience.retry.RetryPolicy`
  — infrastructure failures (broken pool, chunk deadline exceeded) bump
  only the affected chunks' attempt counters; completed chunks keep their
  results; retries re-dispatch to a fresh pool after a deterministic
  backoff seeded by the campaign seed;
* **bounded degradation** — a chunk that exhausts its attempts runs
  in-process (pool → serial, per chunk), or raises
  :class:`~repro.errors.WorkerError` when the policy forbids degradation.

Results are returned in chunk-index order whatever the completion order,
so downstream evidence folds see runs exactly as the serial loop would —
the bit-identity contract survives every fault.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import WorkerError
from repro.resilience import events as ev
from repro.resilience.faults import FaultPlan, activated, maybe_fail_chunk
from repro.resilience.retry import RetryPolicy


@dataclass
class ChunkFailure:
    """One failed pooled attempt of one chunk (for messages and logs)."""

    chunk_index: int
    attempt: int
    reason: str


def run_supervised_chunk(worker_fn: Callable, payload: bytes,
                         chunk_index: int, attempt: int,
                         fault_plan: Optional[FaultPlan]) -> Tuple:
    """Worker-side chunk body: unpickle, run under faults, ship events back.

    The payload arrives pre-pickled (the supervisor serialised it to
    separate submit-time from result-time errors); degradations recorded by
    deeper layers during the chunk (cohort → warp, columnar → object) are
    returned alongside the result so the parent can fold them into its
    accounting.
    """
    args = pickle.loads(payload)
    with activated(fault_plan, chunk_index=chunk_index, attempt=attempt,
                   in_worker=True):
        maybe_fail_chunk()
        with ev.collecting_degradations() as log:
            result = worker_fn(*args)
    return result, list(log.events)


class ChunkSupervisor:
    """Dispatches chunks to a process pool and survives its failures."""

    def __init__(self, policy: Optional[RetryPolicy] = None, seed: int = 0,
                 fault_plan: Optional[FaultPlan] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.policy = policy or RetryPolicy()
        self.seed = seed
        self.fault_plan = fault_plan
        self._sleep = sleep

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, worker_fn: Callable,
            chunk_args: Sequence[Tuple]) -> List[object]:
        """Execute ``worker_fn(*args)`` for every chunk; results in order."""
        n = len(chunk_args)
        results: Dict[int, object] = {}
        attempts = [0] * n
        pending = set(range(n))

        payloads: Dict[int, bytes] = {}
        for index in sorted(pending):
            try:
                payloads[index] = pickle.dumps(chunk_args[index])
            except Exception as error:  # submit-time: payload unpicklable
                ev.record_degradation(
                    ev.POOL_TO_SERIAL, "pool",
                    f"chunk payload is not picklable: {error}",
                    chunk=index)
                results[index] = self._run_inproc(worker_fn,
                                                  chunk_args[index], index)
                pending.discard(index)

        first_generation = True
        while pending:
            for index in sorted(pending):
                if attempts[index] < self.policy.max_attempts:
                    continue
                if not self.policy.degrade_to_serial:
                    raise WorkerError(
                        f"chunk {index} failed {attempts[index]} pooled "
                        f"attempts and the retry policy forbids in-process "
                        f"degradation")
                ev.record_degradation(
                    ev.POOL_TO_SERIAL, "pool",
                    f"chunk exhausted {attempts[index]} pooled attempts",
                    chunk=index, attempts=attempts[index])
                results[index] = self._run_inproc(worker_fn,
                                                  chunk_args[index], index)
                pending.discard(index)
            if not pending:
                break
            if not first_generation:
                delay = max(self.policy.backoff_seconds(attempts[index],
                                                        self.seed, index)
                            for index in pending)
                if delay:
                    self._sleep(delay)
            first_generation = False
            self._pool_generation(worker_fn, payloads, attempts, results,
                                  pending)

        return [results[index] for index in range(n)]

    # ------------------------------------------------------------------
    # one pool generation
    # ------------------------------------------------------------------

    def _pool_generation(self, worker_fn: Callable,
                         payloads: Dict[int, bytes], attempts: List[int],
                         results: Dict[int, object], pending: set) -> None:
        """Dispatch every pending chunk to a fresh pool; harvest what we can.

        On a broken pool or an expired chunk deadline the generation is
        abandoned: completed results are kept, every chunk still in flight
        gets an attempt bump, and the caller decides (budget, backoff)
        what happens next.
        """
        order = sorted(pending)
        try:
            pool = ProcessPoolExecutor(max_workers=len(order))
        except OSError as error:
            # the platform cannot give us worker processes at all (e.g. a
            # sandbox without fork): exhaust every pending chunk at once so
            # the caller degrades them in-process without pointless retries
            for index in order:
                attempts[index] = self.policy.max_attempts
                ev.record_degradation(
                    ev.POOL_RETRY, "pool",
                    f"worker pool unavailable: "
                    f"{type(error).__name__}: {error}",
                    chunk=index, attempt=attempts[index])
            return
        future_chunk = {}
        try:
            for index in order:
                future = pool.submit(run_supervised_chunk, worker_fn,
                                     payloads[index], index, attempts[index],
                                     self.fault_plan)
                future_chunk[future] = index
            deadline: Optional[float] = None
            if self.policy.chunk_timeout is not None:
                deadline = time.monotonic() + self.policy.chunk_timeout
            not_done = set(future_chunk)
            while not_done:
                timeout = None
                if deadline is not None:
                    timeout = max(0.0, deadline - time.monotonic())
                done, not_done = wait(not_done, timeout=timeout,
                                      return_when=FIRST_COMPLETED)
                for future in done:
                    index = future_chunk[future]
                    try:
                        result, worker_events = future.result()
                    except (BrokenProcessPool, OSError) as error:
                        # infrastructure failure: every chunk still in
                        # flight is suspect — bump and abandon the pool
                        self._note_retry(pending - set(results), attempts,
                                         f"worker pool broke: "
                                         f"{type(error).__name__}: {error}")
                        return
                    except Exception:
                        # result-time error raised by worker code itself —
                        # a real bug (even pickle.PicklingError): propagate
                        # instead of silently degrading
                        raise
                    log = ev.active_log()
                    if log is not None:
                        log.extend(worker_events)
                    results[index] = result
                    pending.discard(index)
                if (deadline is not None and not_done
                        and time.monotonic() >= deadline):
                    late = sorted(future_chunk[f] for f in not_done)
                    for index in late:
                        ev.record_degradation(
                            ev.CHUNK_TIMEOUT, "pool",
                            f"chunk exceeded its "
                            f"{self.policy.chunk_timeout}s deadline",
                            chunk=index, attempt=attempts[index])
                    self._note_retry(set(late), attempts,
                                     "chunk deadline exceeded")
                    return
        finally:
            # wait=False: abandoned generations must not block on a hung or
            # sleeping worker; the processes die with their queued work
            pool.shutdown(wait=False, cancel_futures=True)

    def _note_retry(self, chunks: set, attempts: List[int],
                    reason: str) -> None:
        for index in sorted(chunks):
            attempts[index] += 1
            ev.record_degradation(ev.POOL_RETRY, "pool", reason,
                                  chunk=index, attempt=attempts[index])

    def _run_inproc(self, worker_fn: Callable, args: Tuple,
                    chunk_index: int) -> object:
        """Reference in-process execution of one chunk (fault-exempt)."""
        with activated(self.fault_plan, chunk_index=chunk_index, attempt=0,
                       in_worker=False):
            return worker_fn(*args)
