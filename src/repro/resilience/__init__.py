"""Fault tolerance for long-running Owl campaigns.

A §VIII campaign is ~200 instrumented re-executions per program; at
production scale those runs cross process pools, speculative execution
engines and a persistent store, any of which can fail mid-flight.  This
package makes every such failure *recoverable along a degradation ladder*
instead of fatal, while preserving the pipeline's bit-identity contract —
a degraded campaign produces the same report bytes as a healthy one:

* **worker supervision** (:mod:`repro.resilience.supervisor`) — per-chunk
  retry with deterministic backoff under a :class:`RetryPolicy`; failed
  chunks are re-dispatched to fresh workers or degraded to in-process
  execution while completed chunks are kept (pool → serial);
* **graceful degradation** (:mod:`repro.resilience.events`) — cohort
  launches that leave the race-free envelope re-execute on the per-warp
  reference engine (cohort → warp), and batch-fold errors replay the batch
  through the per-event object path (columnar → object), each recorded as
  a structured :class:`DegradationEvent`;
* **store self-healing** — ``TraceStore.verify(repair=True)`` quarantines
  corrupt blobs, and the campaign engine transparently re-records what was
  lost;
* **fault injection** (:mod:`repro.resilience.faults`) — a deterministic
  harness (``OwlConfig(fault_plan=...)``, ``owl run --inject ...``) that
  crashes workers, times out chunks, flips blob bits and violates the
  cohort envelope on demand, so every degradation path is CI-testable.
"""

from repro.resilience.events import (
    DegradationEvent,
    DegradationLog,
    collecting_degradations,
    record_degradation,
)
from repro.resilience.faults import FaultError, FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import ChunkFailure, ChunkSupervisor

__all__ = [
    "ChunkFailure",
    "ChunkSupervisor",
    "DegradationEvent",
    "DegradationLog",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "collecting_degradations",
    "record_degradation",
]
