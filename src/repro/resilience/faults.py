"""Deterministic fault injection: make every degradation path CI-testable.

A :class:`FaultPlan` is a declarative list of faults to inject into one
detection run — carried on ``OwlConfig(fault_plan=...)`` or parsed from
``owl run --inject worker_crash:chunk=1,cohort_violation``.  Faults fire at
fixed, named coordinates (chunk index + attempt number, launch ordinal,
store entry rank), never from a clock or RNG, so an injected run is exactly
reproducible — and because every degraded path is bit-identical to its
healthy counterpart, the acceptance bar is that an injected campaign's
report equals the fault-free reference byte for byte.

Supported fault kinds:

========================  ====================================================
``worker_crash``          the worker process hard-exits (``os._exit``) while
                          executing the matching chunk; params ``chunk``
                          (default: every chunk) and ``attempts`` (fire while
                          attempt < attempts, default 1)
``chunk_timeout``         the worker sleeps ``sleep`` seconds (default 0.75)
                          inside the matching chunk so the supervisor's
                          per-chunk deadline trips; params ``chunk``,
                          ``attempts``, ``sleep``
``blob_corruption``       flip one bit of a stored blob before the run;
                          params ``kind`` (manifest entry kind, default
                          ``trace``) and ``index`` (rank in key order,
                          default 0) — applied via
                          :func:`inject_blob_corruption`
``cohort_violation``      the cohort engine raises
                          :class:`~repro.errors.CohortEnvelopeError` for the
                          matching launch; param ``launch`` (per-execution
                          launch ordinal, default: every launch)
``replica_violation``     the replica-cohort engine treats the matching
                          launch as outside its fusion envelope and falls
                          back to per-replica execution; param ``launch``
                          (per-execution launch ordinal, default: every
                          launch)
``batch_fold_error``      folding a columnar memory batch raises, forcing
                          the columnar → object downgrade; param ``kernel``
                          (name substring, default: every batch)
========================  ====================================================

Worker-directed faults (crash / timeout) fire only inside real pool worker
processes — the in-process degradation path deliberately runs fault-free,
which is what makes the pool → serial ladder terminate.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError

#: Recognised fault kinds (parse-time validation).
FAULT_KINDS = ("worker_crash", "chunk_timeout", "blob_corruption",
               "cohort_violation", "replica_violation", "batch_fold_error")

#: Exit status used by injected worker crashes (distinguishable in logs).
CRASH_EXIT_STATUS = 17


class FaultError(ConfigError):
    """A fault specification could not be parsed or applied."""


def _parse_scalar(text: str) -> object:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text in ("true", "false"):
        return text == "true"
    return text


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: a kind plus its coordinate parameters."""

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; valid kinds: "
                f"{', '.join(FAULT_KINDS)}")

    def get(self, key: str, default: object = None) -> object:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def matches(self, key: str, value: object) -> bool:
        """True when the spec's *key* param is absent or equals *value*."""
        wanted = self.get(key)
        return wanted is None or wanted == value

    def render(self) -> str:
        return ":".join([self.kind] + [f"{k}={v}" for k, v in self.params])

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``kind[:key=value[:key=value...]]``."""
        fields = [part.strip() for part in text.split(":") if part.strip()]
        if not fields:
            raise FaultError("empty fault specification")
        params: List[Tuple[str, object]] = []
        for part in fields[1:]:
            if "=" not in part:
                raise FaultError(
                    f"fault parameter {part!r} is not key=value "
                    f"(in {text!r})")
            key, _, raw = part.partition("=")
            params.append((key.strip(), _parse_scalar(raw.strip())))
        return cls(kind=fields[0], params=tuple(params))


@dataclass(frozen=True)
class FaultPlan:
    """The full set of faults to inject into one detection run."""

    faults: Tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    def of_kind(self, kind: str) -> Tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.faults if spec.kind == kind)

    def render(self) -> str:
        return ",".join(spec.render() for spec in self.faults)

    @classmethod
    def parse(cls, text: Union[str, Sequence[str]]) -> "FaultPlan":
        """Parse a comma-separated spec list (or a sequence of them)."""
        if isinstance(text, str):
            pieces = [text]
        else:
            pieces = list(text)
        specs: List[FaultSpec] = []
        for piece in pieces:
            for chunk in piece.split(","):
                chunk = chunk.strip()
                if chunk:
                    specs.append(FaultSpec.parse(chunk))
        return cls(faults=tuple(specs))

    @classmethod
    def coerce(cls, value) -> Optional["FaultPlan"]:
        """Normalise user/manifest input into a plan (None stays None).

        Accepts a plan, a spec string / sequence of strings, or the
        ``dataclasses.asdict`` form a campaign manifest round-trips.
        """
        if value is None or isinstance(value, FaultPlan):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, dict):
            faults = []
            for item in value.get("faults", ()):
                params = tuple((str(k), v) for k, v in item.get("params", ()))
                faults.append(FaultSpec(kind=item["kind"], params=params))
            return cls(faults=tuple(faults))
        if isinstance(value, (list, tuple)):
            return cls.parse(list(value))
        raise FaultError(
            f"cannot build a FaultPlan from {type(value).__name__!r}")


# ----------------------------------------------------------------------
# process-local activation (mirrors repro.profiling)
# ----------------------------------------------------------------------

class _Activation:
    """The fault plan bound to the currently-executing chunk."""

    def __init__(self, plan: FaultPlan, chunk_index: int, attempt: int,
                 in_worker: bool) -> None:
        self.plan = plan
        self.chunk_index = chunk_index
        self.attempt = attempt
        self.in_worker = in_worker


_active: List[_Activation] = []


def _current() -> Optional[_Activation]:
    return _active[-1] if _active else None


@contextmanager
def activated(plan: Optional[FaultPlan], chunk_index: int = 0,
              attempt: int = 0, in_worker: bool = False) -> Iterator[None]:
    """Install *plan* as the process-local fault context for the block."""
    if plan is None or not plan:
        yield
        return
    _active.append(_Activation(plan, chunk_index, attempt, in_worker))
    try:
        yield
    finally:
        _active.pop()


def maybe_fail_chunk() -> None:
    """Fire worker-directed faults for the current chunk, if any match.

    Called at the top of every pooled chunk execution.  ``worker_crash``
    hard-exits the worker process (the supervisor sees a broken pool);
    ``chunk_timeout`` sleeps past the supervisor's deadline.  Both consult
    the chunk index and attempt number, so retries succeed once the
    configured attempt budget is spent.
    """
    ctx = _current()
    if ctx is None or not ctx.in_worker:
        return
    for spec in ctx.plan.of_kind("worker_crash"):
        if (spec.matches("chunk", ctx.chunk_index)
                and ctx.attempt < int(spec.get("attempts", 1))):
            os._exit(CRASH_EXIT_STATUS)
    for spec in ctx.plan.of_kind("chunk_timeout"):
        if (spec.matches("chunk", ctx.chunk_index)
                and ctx.attempt < int(spec.get("attempts", 1))):
            time.sleep(float(spec.get("sleep", 0.75)))


def cohort_violation_for(launch_index: int) -> Optional[FaultSpec]:
    """The cohort-envelope fault matching this launch ordinal, if any."""
    ctx = _current()
    if ctx is None:
        return None
    for spec in ctx.plan.of_kind("cohort_violation"):
        if spec.matches("launch", launch_index):
            return spec
    return None


def replica_violation_for(launch_index: int) -> Optional[FaultSpec]:
    """The replica-fusion fault matching this launch ordinal, if any."""
    ctx = _current()
    if ctx is None:
        return None
    for spec in ctx.plan.of_kind("replica_violation"):
        if spec.matches("launch", launch_index):
            return spec
    return None


def batch_fold_fault_for(kernel_name: str) -> Optional[FaultSpec]:
    """The batch-fold fault matching this kernel, if any."""
    ctx = _current()
    if ctx is None:
        return None
    for spec in ctx.plan.of_kind("batch_fold_error"):
        kernel = spec.get("kernel")
        if kernel is None or str(kernel) in kernel_name:
            return spec
    return None


# ----------------------------------------------------------------------
# store-directed faults
# ----------------------------------------------------------------------

def inject_blob_corruption(store, plan: Optional[FaultPlan]) -> List[str]:
    """Flip one bit in each blob targeted by the plan's ``blob_corruption``
    faults; returns the manifest keys whose blobs were damaged.

    *store* is a :class:`~repro.store.store.TraceStore` (duck-typed to keep
    this module import-light).  Entries are ranked in key order within
    their kind, matching the deterministic ordering ``store.entries`` uses.
    A fault whose target does not exist yet (cold store) is a no-op — the
    CI harness corrupts on the second, warm run.
    """
    if plan is None:
        return []
    corrupted: List[str] = []
    for spec in plan.of_kind("blob_corruption"):
        kind = str(spec.get("kind", "trace"))
        index = int(spec.get("index", 0))
        entries = store.entries(kind=kind)
        if not 0 <= index < len(entries):
            continue
        entry = entries[index]
        path = store.blobs.path_for(entry.blob)
        try:
            data = bytearray(path.read_bytes())
        except FileNotFoundError:
            continue
        if not data:
            continue
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        corrupted.append(entry.key)
    return corrupted
