"""Retry policy for supervised chunk execution.

The policy is pure data (frozen dataclass) so it travels inside
``OwlConfig``, pickles to workers, and round-trips through the campaign
manifest.  Backoff jitter is *deterministic*: derived by hashing the
campaign seed with the chunk index and attempt number, so two runs of the
same campaign sleep identically — randomness would be one more way for a
supervised run to diverge from its reference.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """How the chunk supervisor responds to worker faults.

    ``max_attempts`` counts pooled executions of one chunk (the in-process
    degradation that follows exhaustion is not an attempt).  Backoff before
    attempt *n* (n >= 1) is ``backoff_base * backoff_factor**(n-1)`` capped
    at ``backoff_cap``, plus a deterministic jitter of up to ``jitter``
    fraction of the delay.  ``chunk_timeout`` bounds one pooled attempt's
    wall clock (None = unbounded).  With ``degrade_to_serial=False`` an
    exhausted chunk raises :class:`~repro.errors.WorkerError` instead of
    running in-process — the knob CI uses to simulate a killed campaign.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.5
    chunk_timeout: Optional[float] = None
    degrade_to_serial: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ConfigError(
                f"RetryPolicy.max_attempts must be a positive int, "
                f"got {self.max_attempts!r}")
        for name in ("backoff_base", "backoff_factor", "backoff_cap"):
            value = getattr(self, name)
            if not value >= 0:
                raise ConfigError(
                    f"RetryPolicy.{name} must be >= 0, got {value!r}")
        if not 0 <= self.jitter <= 1:
            raise ConfigError(
                f"RetryPolicy.jitter must be in [0, 1], got {self.jitter!r}")
        if self.chunk_timeout is not None and not self.chunk_timeout > 0:
            raise ConfigError(
                f"RetryPolicy.chunk_timeout must be positive or None, "
                f"got {self.chunk_timeout!r}")

    def backoff_seconds(self, attempt: int, seed: int,
                        chunk_index: int) -> float:
        """Delay before re-dispatching *chunk_index* for *attempt* (>= 1).

        Deterministic in (policy, seed, chunk_index, attempt): the jitter
        fraction comes from a SHA-256 of those coordinates, never from a
        clock or a global RNG.
        """
        if attempt < 1:
            return 0.0
        delay = min(self.backoff_base * self.backoff_factor ** (attempt - 1),
                    self.backoff_cap)
        if self.jitter and delay:
            digest = hashlib.sha256(
                struct.pack("<qqq", seed, chunk_index, attempt)).digest()
            fraction = struct.unpack("<Q", digest[:8])[0] / 2 ** 64
            delay *= 1.0 + self.jitter * fraction
        return delay
