"""Structured degradation records and their process-local collection point.

Every time the pipeline survives a fault by taking a slower-but-equivalent
path — pool → serial, cohort → warp, columnar → object, store blob →
re-record — it appends one :class:`DegradationEvent` to the active
:class:`DegradationLog`.  Events are plain picklable dataclasses: worker
processes collect them locally and ship them back inside
:class:`~repro.core.parallel.ChunkStats`, the parent folds them into
:class:`~repro.core.pipeline.PhaseStats`, and they surface on
:class:`~repro.core.pipeline.OwlResult` (and, from the CLI, in the
``--degradation-log`` JSON artifact).

The collection point is process-local and nestable, mirroring
:mod:`repro.profiling`: deep layers (the device, the trace monitor, the
store) call :func:`record_degradation` without threading a log through
every constructor, and whoever owns the enclosing scope drains it with
:func:`collecting_degradations`.  With no collector installed the call is
a no-op, so the tolerant paths cost nothing on the happy path.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: Degradation ladder rungs (``kind`` values).
POOL_RETRY = "pool_retry"
POOL_TO_SERIAL = "pool_to_serial"
CHUNK_TIMEOUT = "chunk_timeout"
COHORT_TO_WARP = "cohort_to_warp"
REPLICA_TO_RUN = "replica_to_run"
COLUMNAR_TO_OBJECT = "columnar_to_object"
STORE_QUARANTINE = "store_quarantine"
#: fleet-level rungs (the detection service's lifted ladder): a worker
#: process died or went silent past its lease, its leased units were
#: re-queued, and a unit that exhausted its fleet attempts ran in the
#: scheduler process instead
WORKER_LOST = "worker_lost"
UNIT_REQUEUED = "unit_requeued"
FLEET_TO_LOCAL = "fleet_to_local"


@dataclass
class DegradationEvent:
    """One survived fault: what failed, where, and what path replaced it.

    ``kind`` is a rung of the degradation ladder (see the module constants),
    ``subsystem`` names the layer that degraded (``pool`` / ``cohort`` /
    ``columnar`` / ``store``), ``reason`` is the one-line human cause, and
    ``context`` carries the machine-readable coordinates (chunk index,
    attempt number, launch ordinal, store key, ...).
    """

    kind: str
    subsystem: str
    reason: str
    context: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "subsystem": self.subsystem,
                "reason": self.reason, "context": dict(self.context)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DegradationEvent":
        return cls(kind=str(data["kind"]), subsystem=str(data["subsystem"]),
                   reason=str(data["reason"]),
                   context=dict(data.get("context", {})))  # type: ignore

    def render(self) -> str:
        coords = ", ".join(f"{key}={value}"
                           for key, value in sorted(self.context.items()))
        suffix = f" ({coords})" if coords else ""
        return f"[{self.subsystem}] {self.kind}: {self.reason}{suffix}"


class DegradationLog:
    """An append-only, in-order list of degradation events."""

    def __init__(self) -> None:
        self.events: List[DegradationEvent] = []

    def record(self, event: DegradationEvent) -> None:
        self.events.append(event)

    def extend(self, events) -> None:
        self.events.extend(events)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def to_list(self) -> List[Dict[str, object]]:
        return [event.to_dict() for event in self.events]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[DegradationEvent]:
        return iter(self.events)


_active: List[DegradationLog] = []


def active_log() -> Optional[DegradationLog]:
    """The innermost installed collector, if any."""
    return _active[-1] if _active else None


def record_degradation(kind: str, subsystem: str, reason: str,
                       **context) -> DegradationEvent:
    """Record one survived fault on the active log (no-op without one)."""
    event = DegradationEvent(kind=kind, subsystem=subsystem, reason=reason,
                             context=context)
    log = active_log()
    if log is not None:
        log.record(event)
    return event


@contextmanager
def collecting_degradations() -> Iterator[DegradationLog]:
    """Install a fresh collector for the duration of the block.

    Nested collectors shadow outer ones; on exit the collected events are
    *also* propagated to the enclosing collector (if any), so an outer
    scope always sees the full picture.
    """
    log = DegradationLog()
    _active.append(log)
    try:
        yield log
    finally:
        _active.pop()
        outer = active_log()
        if outer is not None:
            outer.extend(log.events)
