"""Myers O(ND) sequence alignment.

§VII-A step 1 of the paper aligns kernel-invocation sequences with the
Myers diff algorithm before merging traces into evidence and before
comparing the fixed-input and random-input evidence.  This is a full
implementation of Myers' greedy O(ND) algorithm with trace-back, producing
an edit script of ``equal`` / ``delete`` / ``insert`` operations.

The module is generic over hashable items so tests can exercise it on plain
strings as well as kernel identities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, List, Sequence, Tuple


class EditOp(enum.Enum):
    """One edit-script operation."""

    EQUAL = "equal"
    DELETE = "delete"   # present in A only
    INSERT = "insert"   # present in B only


@dataclass(frozen=True)
class EditStep:
    """One step of the edit script.

    ``a_index`` / ``b_index`` are the source positions (or -1 when the
    operation does not consume from that side).
    """

    op: EditOp
    a_index: int
    b_index: int


class AlignmentError(Exception):
    """Raised when trace-back fails (indicates an internal bug)."""


def myers_diff(a: Sequence[Hashable], b: Sequence[Hashable]) -> List[EditStep]:
    """Compute a shortest edit script transforming *a* into *b*.

    Classic Myers: explore furthest-reaching D-paths on diagonals
    ``k = x - y``, keeping a snapshot of the frontier per D for trace-back.
    Runtime O((N+M)·D), space O(D²) for the snapshots — fine for kernel
    sequences, whose edit distances are tiny when programs mostly agree.
    """
    n, m = len(a), len(b)
    if n == 0 and m == 0:
        return []
    max_d = n + m
    # v[k] = furthest x on diagonal k; diagonals offset by max_d
    v = [0] * (2 * max_d + 1)
    snapshots: List[List[int]] = []

    found_d = None
    for d in range(max_d + 1):
        snapshots.append(list(v))
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v[k - 1 + max_d] < v[k + 1 + max_d]):
                x = v[k + 1 + max_d]          # move down (insert from b)
            else:
                x = v[k - 1 + max_d] + 1      # move right (delete from a)
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[k + max_d] = x
            if x >= n and y >= m:
                found_d = d
                break
        if found_d is not None:
            break
    if found_d is None:
        raise AlignmentError("Myers search failed to reach the sink")

    # Trace back from (n, m) through the snapshots.
    steps_reversed: List[EditStep] = []
    x, y = n, m
    for d in range(found_d, 0, -1):
        v_prev = snapshots[d]
        k = x - y
        if k == -d or (k != d and v_prev[k - 1 + max_d] < v_prev[k + 1 + max_d]):
            prev_k = k + 1    # came via an insert (down move)
        else:
            prev_k = k - 1    # came via a delete (right move)
        prev_x = v_prev[prev_k + max_d]
        prev_y = prev_x - prev_k
        # snake back to the move point
        while x > prev_x and y > prev_y and x > 0 and y > 0:
            x -= 1
            y -= 1
            steps_reversed.append(EditStep(EditOp.EQUAL, x, y))
        if prev_k == k + 1:
            y -= 1
            steps_reversed.append(EditStep(EditOp.INSERT, -1, y))
        else:
            x -= 1
            steps_reversed.append(EditStep(EditOp.DELETE, x, -1))
        x, y = prev_x, prev_y
    # initial snake (d == 0 prefix)
    while x > 0 and y > 0:
        x -= 1
        y -= 1
        steps_reversed.append(EditStep(EditOp.EQUAL, x, y))
    if x != 0 or y != 0:
        raise AlignmentError(f"trace-back terminated at ({x}, {y}), not (0, 0)")

    return list(reversed(steps_reversed))


def align_pairs(a: Sequence[Hashable],
                b: Sequence[Hashable]) -> List[Tuple[int, int]]:
    """Aligned index pairs ``(i, j)`` with ``a[i] == b[j]``."""
    return [(s.a_index, s.b_index) for s in myers_diff(a, b)
            if s.op is EditOp.EQUAL]


def edit_distance(a: Sequence[Hashable], b: Sequence[Hashable]) -> int:
    """Number of non-equal operations in the shortest edit script."""
    return sum(1 for s in myers_diff(a, b) if s.op is not EditOp.EQUAL)
