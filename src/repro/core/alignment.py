"""Myers O(ND) sequence alignment.

§VII-A step 1 of the paper aligns kernel-invocation sequences with the
Myers diff algorithm before merging traces into evidence and before
comparing the fixed-input and random-input evidence.  This is a full
implementation of Myers' greedy O(ND) algorithm with trace-back, producing
an edit script of ``equal`` / ``delete`` / ``insert`` operations.

Two fast paths keep the alignment off the analysis profile:

* equal-length elementwise-identical sequences — by far the common case
  when folding repeated runs into evidence — return the all-EQUAL script
  after one O(N) scan, skipping the search entirely;
* long inputs run the forward search with the per-``d`` diagonal sweep
  vectorized in NumPy (the reads feeding diagonal ``k`` come from the
  previous ``d``'s opposite-parity slots, so every diagonal of one ``d``
  is independent and the whole frontier advances in a few array ops).

Both produce the exact scripts of the scalar reference loop, which remains
for short inputs where NumPy call overhead dominates.

The module is generic over hashable items so tests can exercise it on plain
strings as well as kernel identities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np


class EditOp(enum.Enum):
    """One edit-script operation."""

    EQUAL = "equal"
    DELETE = "delete"   # present in A only
    INSERT = "insert"   # present in B only


@dataclass(frozen=True)
class EditStep:
    """One step of the edit script.

    ``a_index`` / ``b_index`` are the source positions (or -1 when the
    operation does not consume from that side).
    """

    op: EditOp
    a_index: int
    b_index: int


class AlignmentError(Exception):
    """Raised when trace-back fails (indicates an internal bug)."""


#: Inputs at least this long (n + m) use the NumPy forward pass; shorter
#: ones stay on the scalar loop, whose per-step cost is lower.
NUMPY_THRESHOLD = 64


def _identical(a: Sequence[Hashable], b: Sequence[Hashable]) -> bool:
    """True when both sequences are elementwise equal (same length)."""
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if x != y:
            return False
    return True


def _forward_scalar(a, b, n: int, m: int,
                    max_d: int) -> Tuple[Optional[int], List]:
    """Reference forward search: per-diagonal Python loop."""
    # v[k] = furthest x on diagonal k; diagonals offset by max_d
    v = [0] * (2 * max_d + 1)
    snapshots: List[List[int]] = []
    for d in range(max_d + 1):
        snapshots.append(list(v))
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v[k - 1 + max_d] < v[k + 1 + max_d]):
                x = v[k + 1 + max_d]          # move down (insert from b)
            else:
                x = v[k - 1 + max_d] + 1      # move right (delete from a)
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[k + max_d] = x
            if x >= n and y >= m:
                return d, snapshots
    return None, snapshots


def _forward_numpy(a, b, n: int, m: int,
                   max_d: int) -> Tuple[Optional[int], List]:
    """Vectorized forward search: one array sweep per edit distance ``d``.

    Within one ``d`` every diagonal's move decision reads only the
    previous ``d``'s frontier (``k ± 1`` have opposite parity and are
    untouched this sweep), so the decisions vectorize; snakes advance all
    diagonals in lockstep over integer-encoded sequences, one array
    comparison per matched step.  Frontier snapshots are taken exactly as
    in the scalar loop, so the trace-back sees identical state.
    """
    codes: dict = {}
    enc_a = np.fromiter((codes.setdefault(item, len(codes)) for item in a),
                        dtype=np.int64, count=n)
    enc_b = np.fromiter((codes.setdefault(item, len(codes)) for item in b),
                        dtype=np.int64, count=m)
    v = np.zeros(2 * max_d + 1, dtype=np.int64)
    snapshots: List[np.ndarray] = []
    for d in range(max_d + 1):
        snapshots.append(v.copy())
        ks = np.arange(-d, d + 1, 2, dtype=np.int64)
        # clip the neighbour indices: the clipped reads only occur where
        # the decision is forced (k == ±d) and the value is unused
        up = v[np.minimum(ks + 1 + max_d, 2 * max_d)]
        left = v[np.maximum(ks - 1 + max_d, 0)]
        down = (ks == -d) | ((ks != d) & (left < up))
        xs = np.where(down, up, left + 1)
        ys = xs - ks
        # extend every diagonal's snake one matched element per pass
        active = np.flatnonzero((xs >= 0) & (ys >= 0) & (xs < n) & (ys < m))
        while active.size:
            matched = active[enc_a[xs[active]] == enc_b[ys[active]]]
            if not matched.size:
                break
            xs[matched] += 1
            ys[matched] += 1
            active = matched[(xs[matched] < n) & (ys[matched] < m)]
        v[ks + max_d] = xs
        if bool(((xs >= n) & (ys >= m)).any()):
            return d, snapshots
    return None, snapshots


def myers_diff(a: Sequence[Hashable], b: Sequence[Hashable]) -> List[EditStep]:
    """Compute a shortest edit script transforming *a* into *b*.

    Classic Myers: explore furthest-reaching D-paths on diagonals
    ``k = x - y``, keeping a snapshot of the frontier per D for trace-back.
    Runtime O((N+M)·D), space O(D²) for the snapshots — fine for kernel
    sequences, whose edit distances are tiny when programs mostly agree.
    Identical sequences short-circuit to the all-EQUAL script in O(N).
    """
    n, m = len(a), len(b)
    if n == 0 and m == 0:
        return []
    if _identical(a, b):
        return [EditStep(EditOp.EQUAL, i, i) for i in range(n)]
    max_d = n + m
    if n + m >= NUMPY_THRESHOLD:
        found_d, snapshots = _forward_numpy(a, b, n, m, max_d)
    else:
        found_d, snapshots = _forward_scalar(a, b, n, m, max_d)
    if found_d is None:
        raise AlignmentError("Myers search failed to reach the sink")

    # Trace back from (n, m) through the snapshots.
    steps_reversed: List[EditStep] = []
    x, y = n, m
    for d in range(found_d, 0, -1):
        v_prev = snapshots[d]
        k = x - y
        if k == -d or (k != d and v_prev[k - 1 + max_d] < v_prev[k + 1 + max_d]):
            prev_k = k + 1    # came via an insert (down move)
        else:
            prev_k = k - 1    # came via a delete (right move)
        prev_x = int(v_prev[prev_k + max_d])
        prev_y = prev_x - prev_k
        # snake back to the move point
        while x > prev_x and y > prev_y and x > 0 and y > 0:
            x -= 1
            y -= 1
            steps_reversed.append(EditStep(EditOp.EQUAL, x, y))
        if prev_k == k + 1:
            y -= 1
            steps_reversed.append(EditStep(EditOp.INSERT, -1, y))
        else:
            x -= 1
            steps_reversed.append(EditStep(EditOp.DELETE, x, -1))
        x, y = prev_x, prev_y
    # initial snake (d == 0 prefix)
    while x > 0 and y > 0:
        x -= 1
        y -= 1
        steps_reversed.append(EditStep(EditOp.EQUAL, x, y))
    if x != 0 or y != 0:
        raise AlignmentError(f"trace-back terminated at ({x}, {y}), not (0, 0)")

    return list(reversed(steps_reversed))


def align_pairs(a: Sequence[Hashable],
                b: Sequence[Hashable]) -> List[Tuple[int, int]]:
    """Aligned index pairs ``(i, j)`` with ``a[i] == b[j]``."""
    if _identical(a, b):
        return [(i, i) for i in range(len(a))]
    return [(s.a_index, s.b_index) for s in myers_diff(a, b)
            if s.op is EditOp.EQUAL]


def edit_distance(a: Sequence[Hashable], b: Sequence[Hashable]) -> int:
    """Number of non-equal operations in the shortest edit script."""
    return sum(1 for s in myers_diff(a, b) if s.op is not EditOp.EQUAL)
