"""Worker-pool trace recording — the §VIII-A hot path, parallelised.

Phases 1 and 3 re-execute the program under test hundreds of times, and
every execution is independent by construction (each run gets a fresh
simulated :class:`~repro.gpusim.device.Device`, like a fresh process), so
the recording loop parallelises across a ``ProcessPoolExecutor``.

Two design points keep the parallel pipeline byte-identical to the serial
one:

* **inputs are drawn in the parent** — the pipeline materialises every run
  input from one seeded generator in the serial draw order and dispatches
  *contiguous* chunks of them, so run *i* executes the same input no matter
  how many workers exist, and a run's trace cannot depend on which worker
  executed it (devices are seeded from the static ``DeviceConfig``, never
  from worker state);
* **partial evidence, folded in chunk order** — each worker folds its chunk
  of runs into a partial :class:`~repro.core.evidence.Evidence` (the same
  streaming fold the serial path uses) and ships *that* back instead of
  pickling hundreds of full ``ProgramTrace`` objects; the parent merges the
  partials left-to-right with :meth:`Evidence.merge`, which extends the
  per-run presence vectors in run order and aggregates A-DCFGs with the
  associative :func:`~repro.adcfg.merge.merge_adcfg_into`.

Failures are handled per chunk by a
:class:`~repro.resilience.supervisor.ChunkSupervisor` under the
configuration's :class:`~repro.resilience.retry.RetryPolicy`: a dead worker
or an expired chunk deadline re-dispatches only the affected chunks to a
fresh pool (completed chunks are kept), exhausted chunks degrade to
in-process execution, and every step is recorded as a
:class:`~repro.resilience.events.DegradationEvent` on the returned
:class:`ChunkStats`.  The in-process serial loop remains the reference:
``workers=1``, tiny batches and unpicklable programs (e.g. closure-built
workloads) use it directly, and supervised results are folded in chunk
order so any fault pattern produces bit-identical evidence.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.evidence import Evidence
from repro.errors import ConfigError
from repro.gpusim.device import DeviceConfig
from repro.resilience import events as degradation_events
from repro.resilience.events import DegradationEvent, collecting_degradations
from repro.resilience.faults import FaultPlan, activated
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import ChunkSupervisor
from repro.tracing.recorder import Program, ProgramTrace, TraceRecorder

#: Worker-count specification: a positive int, ``"auto"`` (one worker per
#: available core), or None (serial).
WorkerSpec = Union[int, str, None]


def resolve_workers(workers: WorkerSpec) -> int:
    """Normalise a worker spec to a concrete positive worker count."""
    if workers is None:
        return 1
    if isinstance(workers, str):
        if workers == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            workers = int(workers)
        except ValueError:
            raise ConfigError(
                f"workers must be a positive int or 'auto', got {workers!r}"
            ) from None
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigError(
            f"workers must be a positive int or 'auto', got {workers!r}")
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    return workers


def chunk_slices(n: int, chunks: int) -> List[slice]:
    """Split ``range(n)`` into at most *chunks* contiguous balanced slices.

    Deterministic: depends only on ``(n, chunks)``.  Earlier slices get the
    remainder, matching ``np.array_split`` semantics.
    """
    if n < 0:
        raise ConfigError("n must be >= 0")
    if chunks < 1:
        raise ConfigError("chunks must be >= 1")
    chunks = min(chunks, n) or 1
    base, extra = divmod(n, chunks)
    slices = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        if size == 0:
            break
        slices.append(slice(start, start + size))
        start += size
    return slices


@dataclass
class ChunkStats:
    """Cost accounting for one recorded chunk of runs.

    ``trace_seconds_total`` sums per-run recording cost (CPU-side wall time
    of each ``record`` call — with workers these overlap, so the sum can
    exceed the enclosing phase's wall clock); ``evidence_seconds`` is the
    time spent folding traces into evidence.  ``degradations`` carries the
    structured record of every fault this batch survived (worker retries,
    cohort → warp fallbacks, ...), wherever it occurred.
    """

    trace_count: int = 0
    trace_bytes_total: int = 0
    trace_seconds_total: float = 0.0
    evidence_seconds: float = 0.0
    #: replica-batching counters (see repro.tracing.replica.ReplicaStats)
    replica_dedup_runs: int = 0
    replica_fused_groups: int = 0
    replica_fused_launches: int = 0
    replica_fallback_launches: int = 0
    degradations: List[DegradationEvent] = field(default_factory=list)

    def add_trace(self, trace: ProgramTrace, seconds: float,
                  count: int = 1) -> None:
        self.trace_count += count
        self.trace_bytes_total += trace.trace_size_bytes() * count
        self.trace_seconds_total += seconds * count

    def add_replica_stats(self, replica_stats) -> None:
        self.replica_dedup_runs += replica_stats.dedup_runs
        self.replica_fused_groups += replica_stats.fused_groups
        self.replica_fused_launches += replica_stats.fused_launches
        self.replica_fallback_launches += replica_stats.fallback_launches

    def absorb(self, other: "ChunkStats") -> None:
        self.trace_count += other.trace_count
        self.trace_bytes_total += other.trace_bytes_total
        self.trace_seconds_total += other.trace_seconds_total
        self.evidence_seconds += other.evidence_seconds
        self.replica_dedup_runs += other.replica_dedup_runs
        self.replica_fused_groups += other.replica_fused_groups
        self.replica_fused_launches += other.replica_fused_launches
        self.replica_fallback_launches += other.replica_fallback_launches
        self.degradations.extend(other.degradations)


def _replica_batches(values: Sequence[object],
                     replica_batch) -> Optional[List[Sequence[object]]]:
    """Partition *values* into replica batches (None = serial reference).

    ``True`` batches the whole chunk; an int ``n >= 2`` caps batches at
    *n* runs; ``False`` / ``None`` / ``n <= 1`` keep the per-run loop.
    """
    if len(values) <= 1:
        return None
    if replica_batch is True:
        size = len(values)
    elif isinstance(replica_batch, bool) or replica_batch is None:
        return None
    elif isinstance(replica_batch, int) and replica_batch >= 2:
        size = replica_batch
    else:
        return None
    return [values[start:start + size]
            for start in range(0, len(values), size)]


def _record_grouped_batches(
        program: Program, device_config: Optional[DeviceConfig],
        batches: List[Sequence[object]], columnar: bool, cohort: bool,
        dedup: bool,
        stats: ChunkStats) -> List[Tuple[ProgramTrace, int, float]]:
    """Record replica batches; yields ``(trace, count, per_run_seconds)``."""
    from repro.tracing.replica import record_grouped

    out: List[Tuple[ProgramTrace, int, float]] = []
    for batch in batches:
        started = time.perf_counter()
        groups, replica_stats = record_grouped(
            program, batch, device_config=device_config,
            columnar=columnar, cohort=cohort, dedup=dedup)
        elapsed = time.perf_counter() - started
        stats.add_replica_stats(replica_stats)
        total_runs = sum(count for _trace, count in groups)
        per_run = elapsed / total_runs if total_runs else 0.0
        out.extend((trace, count, per_run) for trace, count in groups)
    return out


def _record_trace_chunk(
        program: Program, device_config: Optional[DeviceConfig],
        values: Sequence[object], buffered: bool, columnar: bool,
        cohort: bool, replica_batch=False, replica_dedup: bool = False,
) -> Tuple[List[ProgramTrace], ChunkStats]:
    """Worker body for phase 1: record and return the raw traces."""
    stats = ChunkStats()
    traces: List[ProgramTrace] = []
    batches = None if buffered else _replica_batches(values, replica_batch)
    if batches is not None:
        for trace, count, per_run in _record_grouped_batches(
                program, device_config, batches, columnar, cohort,
                replica_dedup, stats):
            stats.add_trace(trace, per_run, count=count)
            # pre-compute the digest so the phase-2 grouping in the parent
            # reuses it instead of re-serialising every A-DCFG
            trace.signature()
            traces.extend([trace] * count)
        return traces, stats
    recorder = TraceRecorder(device_config=device_config, buffered=buffered,
                             columnar=columnar, cohort=cohort)
    for value in values:
        started = time.perf_counter()
        trace = recorder.record(program, value)
        stats.add_trace(trace, time.perf_counter() - started)
        # pre-compute the digest worker-side so the phase-2 grouping in the
        # parent reuses it instead of re-serialising every A-DCFG
        trace.signature()
        traces.append(trace)
    return traces, stats


def _record_evidence_chunk(
        program: Program, device_config: Optional[DeviceConfig],
        values: Sequence[object], keep_per_run: bool, buffered: bool,
        columnar: bool, cohort: bool, replica_batch=False,
        replica_dedup: bool = False,
) -> Tuple[Evidence, ChunkStats]:
    """Worker body for phase 3: fold the chunk's runs into partial evidence.

    Each trace is dropped as soon as it is merged, so worker peak RAM is one
    trace plus the growing partial evidence — the streaming fold that keeps
    the Table IV memory column flat at high run counts.
    """
    stats = ChunkStats()
    evidence = Evidence(keep_per_run=keep_per_run)
    batches = None if buffered else _replica_batches(values, replica_batch)
    if batches is not None:
        for trace, count, per_run in _record_grouped_batches(
                program, device_config, batches, columnar, cohort,
                replica_dedup, stats):
            stats.add_trace(trace, per_run, count=count)
            folded = time.perf_counter()
            evidence.add_trace_repeated(trace, count)
            stats.evidence_seconds += time.perf_counter() - folded
        return evidence, stats
    recorder = TraceRecorder(device_config=device_config, buffered=buffered,
                             columnar=columnar, cohort=cohort)
    for value in values:
        started = time.perf_counter()
        trace = recorder.record(program, value)
        recorded = time.perf_counter()
        stats.add_trace(trace, recorded - started)
        evidence.add_trace(trace)
        stats.evidence_seconds += time.perf_counter() - recorded
    return evidence, stats


class TraceRecordingPool:
    """Records batches of runs serially or across a supervised process pool.

    The pool is created per batch (``ProcessPoolExecutor`` startup is
    negligible next to hundreds of instrumented executions) and the serial
    in-process path is the reference: for any picklable program the pooled
    result is identical under any fault pattern, and unpicklable programs
    silently use the serial path so callers never have to care.

    ``retry`` (a :class:`~repro.resilience.retry.RetryPolicy`) governs how
    worker faults are survived; ``fault_plan`` deterministically injects
    them (see :mod:`repro.resilience.faults`); ``seed`` feeds the
    deterministic backoff jitter.
    """

    def __init__(self, program: Program,
                 device_config: Optional[DeviceConfig] = None,
                 workers: WorkerSpec = 1, buffered: bool = False,
                 columnar: bool = True, cohort: bool = True, *,
                 replica_batch=False, replica_dedup: bool = False,
                 retry: Optional[RetryPolicy] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 seed: int = 0) -> None:
        self.program = program
        self.device_config = device_config
        self.workers = resolve_workers(workers)
        self.buffered = buffered
        self.columnar = columnar
        self.cohort = cohort
        self.replica_batch = replica_batch
        self.replica_dedup = replica_dedup
        self.retry = retry or RetryPolicy()
        self.fault_plan = fault_plan
        self.seed = seed

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def record_traces(self, values: Sequence[object]
                      ) -> Tuple[List[ProgramTrace], ChunkStats]:
        """Record one trace per value (phase 1: traces are kept)."""
        with collecting_degradations() as log:
            chunks = self._run_chunks(_record_trace_chunk, values,
                                      (self.buffered, self.columnar,
                                       self.cohort, self.replica_batch,
                                       self.replica_dedup))
        traces: List[ProgramTrace] = []
        stats = ChunkStats()
        for chunk_traces, chunk_stats in chunks:
            traces.extend(chunk_traces)
            stats.absorb(chunk_stats)
        stats.degradations.extend(log.events)
        return traces, stats

    def record_evidence(self, values: Sequence[object],
                        keep_per_run: bool = False
                        ) -> Tuple[Evidence, ChunkStats]:
        """Record runs and fold them straight into one evidence (phase 3)."""
        with collecting_degradations() as log:
            chunks = self._run_chunks(_record_evidence_chunk, values,
                                      (keep_per_run, self.buffered,
                                       self.columnar, self.cohort,
                                       self.replica_batch,
                                       self.replica_dedup))
        evidence: Optional[Evidence] = None
        stats = ChunkStats()
        for chunk_evidence, chunk_stats in chunks:
            stats.absorb(chunk_stats)
            if evidence is None:
                evidence = chunk_evidence
            else:
                merge_started = time.perf_counter()
                evidence.merge(chunk_evidence)
                stats.evidence_seconds += time.perf_counter() - merge_started
        stats.degradations.extend(log.events)
        return evidence if evidence is not None else Evidence(
            keep_per_run=keep_per_run), stats

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _effective_workers(self, n_values: int) -> int:
        workers = min(self.workers, n_values)
        if workers <= 1:
            return 1
        if not self._payload_picklable():
            return 1
        return workers

    def _payload_picklable(self) -> bool:
        try:
            pickle.dumps((self.program, self.device_config))
        except Exception:
            return False
        return True

    def _run_chunks(self, worker_fn, values: Sequence[object],
                    extra_args: Tuple) -> List[Tuple]:
        values = list(values)
        workers = self._effective_workers(len(values))
        if workers <= 1:
            # the in-process reference path; device-level fault kinds
            # (cohort violations, batch-fold errors) still apply so the
            # degradation ladder is exercised at any worker count
            with activated(self.fault_plan, chunk_index=0, attempt=0,
                           in_worker=False):
                return [worker_fn(self.program, self.device_config, values,
                                  *extra_args)]
        slices = chunk_slices(len(values), workers)
        supervisor = ChunkSupervisor(policy=self.retry, seed=self.seed,
                                     fault_plan=self.fault_plan)
        outcomes = supervisor.run(
            worker_fn,
            [(self.program, self.device_config, values[s], *extra_args)
             for s in slices])
        # outcomes arrive in chunk (= run) order whatever the completion
        # order, so downstream folds see runs exactly as the serial loop
        return outcomes


# re-exported for callers that want to observe degradations directly
record_degradation = degradation_events.record_degradation
