"""Distribution tests: two-sample Kolmogorov–Smirnov (and Welch's t).

The paper replaces the Welch's t-test used by earlier leakage-detection work
with the two-sample KS test because trace features are not normally
distributed (§VII-B).  Implemented exactly per the paper's equations:

* empirical distribution functions (eq. 1),
* KS statistic ``D = sup |F_X - F_Y|`` (eq. 2),
* significance threshold ``D_{n,m}`` (eq. 3),
* asymptotic p-value ``p = 2 exp(-2 D² nm/(n+m))`` (eq. 4),

with the decision rule: the feature *fails* (deviates significantly, i.e.
leaks) when ``p < 1 - α`` for confidence level α (0.95 in the evaluation).

Features arrive as **weighted histograms** (address offset → access count;
transition type → traversal count), so a weighted-sample variant is
provided alongside the plain one.  Welch's t-test is included as the
ablation baseline (``bench_ablation_kstest``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

import numpy as np

#: Default confidence level used throughout the paper's evaluation.
DEFAULT_CONFIDENCE = 0.95


@dataclass(frozen=True)
class TestResult:
    """Outcome of one two-sample distribution test.

    ``rejected`` means the null hypothesis (same distribution) is rejected —
    in Owl's terms, the feature *failed* the test and indicates leakage.
    """

    statistic: float
    p_value: float
    n: int
    m: int
    threshold: float
    confidence: float

    @property
    def rejected(self) -> bool:
        return self.p_value < (1.0 - self.confidence)


class DistributionTestError(Exception):
    """Raised on degenerate inputs (empty samples)."""


def ks_threshold(n: int, m: int, confidence: float = DEFAULT_CONFIDENCE) -> float:
    """Significance threshold ``D_{n,m}`` (eq. 3).

    ``alpha`` in eq. 3 is the significance level ``1 - confidence``.
    """
    alpha = 1.0 - confidence
    if not 0.0 < alpha < 1.0:
        raise DistributionTestError(f"confidence must be in (0, 1), got {confidence}")
    if n <= 0 or m <= 0:
        raise DistributionTestError("sample sizes must be positive")
    return math.sqrt(-math.log(alpha / 2.0) * 0.5) * math.sqrt((n + m) / (n * m))


def ks_p_value(statistic: float, n: int, m: int) -> float:
    """Asymptotic two-sample KS p-value (eq. 4), clamped to [0, 1]."""
    if n <= 0 or m <= 0:
        raise DistributionTestError("sample sizes must be positive")
    exponent = -2.0 * statistic * statistic * (n * m) / (n + m)
    return min(1.0, 2.0 * math.exp(exponent))


def ks_statistic(x: Sequence[float], y: Sequence[float]) -> float:
    """``D = sup_t |F_X(t) - F_Y(t)|`` over two plain samples (eq. 2)."""
    xs = np.sort(np.asarray(x, dtype=float))
    ys = np.sort(np.asarray(y, dtype=float))
    if xs.size == 0 or ys.size == 0:
        raise DistributionTestError("KS statistic needs non-empty samples")
    grid = np.concatenate([xs, ys])
    cdf_x = np.searchsorted(xs, grid, side="right") / xs.size
    cdf_y = np.searchsorted(ys, grid, side="right") / ys.size
    return float(np.abs(cdf_x - cdf_y).max())


def ks_test(x: Sequence[float], y: Sequence[float],
            confidence: float = DEFAULT_CONFIDENCE) -> TestResult:
    """Full two-sample KS test on plain samples."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    d = ks_statistic(xs, ys)
    n, m = int(xs.size), int(ys.size)
    return TestResult(statistic=d, p_value=ks_p_value(d, n, m), n=n, m=m,
                      threshold=ks_threshold(n, m, confidence),
                      confidence=confidence)


#: A weighted histogram: value → non-negative integer weight.
Histogram = Mapping[Hashable, int]


def _ordered_weights(
        hist_x: Histogram, hist_y: Histogram,
        order: Optional[Dict[Hashable, int]] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Weight vectors of both histograms over their ordered common support.

    Values are ordered numerically when possible; otherwise by an explicit
    *order* mapping (used for categorical features such as control-flow
    transition types, where any fixed order yields a valid ECDF comparison).
    The scalar and batched KS paths share this helper so they evaluate the
    ECDFs on identical supports.
    """
    support = set(hist_x) | set(hist_y)
    if not support:
        raise DistributionTestError("KS test on two empty histograms")
    if order is None:
        try:
            ordered = sorted(support)
        except TypeError:
            ordered = sorted(support, key=repr)
    else:
        ordered = sorted(support, key=lambda v: order[v])
    wx = np.array([hist_x.get(v, 0) for v in ordered], dtype=float)
    wy = np.array([hist_y.get(v, 0) for v in ordered], dtype=float)
    return wx, wy


def _weighted_cdf_points(
        hist_x: Histogram, hist_y: Histogram,
        order: Optional[Dict[Hashable, int]] = None
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Common support and the two weighted ECDFs evaluated on it."""
    wx, wy = _ordered_weights(hist_x, hist_y, order)
    n = int(wx.sum())
    m = int(wy.sum())
    if n == 0 or m == 0:
        raise DistributionTestError("KS test needs non-empty samples")
    return np.cumsum(wx) / n, np.cumsum(wy) / m, n, m


def ks_statistic_weighted(hist_x: Histogram, hist_y: Histogram,
                          order: Optional[Dict[Hashable, int]] = None) -> float:
    """KS statistic between two weighted histograms."""
    cdf_x, cdf_y, _n, _m = _weighted_cdf_points(hist_x, hist_y, order)
    return float(np.abs(cdf_x - cdf_y).max())


def ks_test_weighted(hist_x: Histogram, hist_y: Histogram,
                     confidence: float = DEFAULT_CONFIDENCE,
                     order: Optional[Dict[Hashable, int]] = None,
                     sample_size_cap: Optional[int] = None) -> TestResult:
    """Two-sample KS test on weighted histograms.

    ``sample_size_cap`` optionally bounds the effective sample sizes; lane
    accesses within a warp are correlated, so uncapped counts make the test
    slightly over-sensitive — which is faithful to the paper (it reports a
    small population of false positives from exactly this effect), but a cap
    is available for the strict configuration.
    """
    cdf_x, cdf_y, n, m = _weighted_cdf_points(hist_x, hist_y, order)
    d = float(np.abs(cdf_x - cdf_y).max())
    if sample_size_cap is not None:
        n = min(n, sample_size_cap)
        m = min(m, sample_size_cap)
    return TestResult(statistic=d, p_value=ks_p_value(d, n, m), n=n, m=m,
                      threshold=ks_threshold(n, m, confidence),
                      confidence=confidence)


#: One batched request: ``(hist_x, hist_y)`` or ``(hist_x, hist_y, order)``.
BatchRequest = Tuple


def ks_test_batch(requests: Sequence[BatchRequest],
                  confidence: float = DEFAULT_CONFIDENCE,
                  sample_size_cap: Optional[int] = None
                  ) -> list:
    """Vectorized two-sample KS over many weighted-histogram pairs.

    Semantically equivalent to calling :func:`ks_test_weighted` per request
    (the scalar function stays the reference implementation — the test
    suite asserts agreement to 1e-12), but all statistics, thresholds and
    p-values are computed in one NumPy pass over a zero-padded weight
    matrix: trailing zero weights leave both cumulative sums at their
    totals, where the normalised CDFs agree at 1.0, so padding never moves
    the supremum.

    Returns one :class:`TestResult` per request, with ``None`` wherever the
    scalar call would raise :class:`DistributionTestError` (empty support
    or an empty side) — degenerate features are skipped, not fatal, when
    testing thousands of features at once.
    """
    alpha = 1.0 - confidence
    if not 0.0 < alpha < 1.0:
        raise DistributionTestError(
            f"confidence must be in (0, 1), got {confidence}")
    results: list = [None] * len(requests)
    rows: list = []  # (request index, wx, wy)
    for index, request in enumerate(requests):
        if len(request) == 2:
            hist_x, hist_y = request
            order = None
        else:
            hist_x, hist_y, order = request
        try:
            wx, wy = _ordered_weights(hist_x, hist_y, order)
        except DistributionTestError:
            continue
        if wx.sum() == 0 or wy.sum() == 0:
            continue
        rows.append((index, wx, wy))
    if not rows:
        return results

    width = max(len(wx) for _i, wx, _wy in rows)
    weight_x = np.zeros((len(rows), width))
    weight_y = np.zeros((len(rows), width))
    for row, (_index, wx, wy) in enumerate(rows):
        weight_x[row, :len(wx)] = wx
        weight_y[row, :len(wy)] = wy

    n = weight_x.sum(axis=1)
    m = weight_y.sum(axis=1)
    cdf_x = np.cumsum(weight_x, axis=1) / n[:, None]
    cdf_y = np.cumsum(weight_y, axis=1) / m[:, None]
    d = np.abs(cdf_x - cdf_y).max(axis=1)

    if sample_size_cap is not None:
        n = np.minimum(n, sample_size_cap)
        m = np.minimum(m, sample_size_cap)
    # same operation order as the scalar ks_p_value / ks_threshold
    exponent = -2.0 * d * d * (n * m) / (n + m)
    p = np.minimum(1.0, 2.0 * np.exp(exponent))
    threshold = (math.sqrt(-math.log(alpha / 2.0) * 0.5)
                 * np.sqrt((n + m) / (n * m)))

    for row, (index, _wx, _wy) in enumerate(rows):
        results[index] = TestResult(
            statistic=float(d[row]), p_value=float(p[row]),
            n=int(n[row]), m=int(m[row]),
            threshold=float(threshold[row]), confidence=confidence)
    return results


def welch_t_test(x: Sequence[float], y: Sequence[float],
                 confidence: float = DEFAULT_CONFIDENCE) -> TestResult:
    """Welch's unequal-variance t-test (the prior-work baseline).

    Returned in the same :class:`TestResult` shape; the ``statistic`` is
    |t| and the p-value comes from a normal approximation of the t
    distribution (adequate at the 100-run sample sizes used here, and
    dependency-free).  Degenerate zero-variance cases are decided exactly:
    equal means pass, different means fail.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    n, m = int(xs.size), int(ys.size)
    if n < 2 or m < 2:
        raise DistributionTestError("Welch's t-test needs >= 2 samples per side")
    var_x = float(xs.var(ddof=1))
    var_y = float(ys.var(ddof=1))
    mean_diff = float(xs.mean() - ys.mean())
    pooled = var_x / n + var_y / m
    if pooled == 0.0:
        p = 1.0 if mean_diff == 0.0 else 0.0
        t_abs = 0.0 if mean_diff == 0.0 else math.inf
    else:
        t_abs = abs(mean_diff) / math.sqrt(pooled)
        # two-sided normal-approximation p-value
        p = math.erfc(t_abs / math.sqrt(2.0))
    return TestResult(statistic=t_abs, p_value=p, n=n, m=m,
                      threshold=float("nan"), confidence=confidence)


def welch_t_test_weighted(hist_x: Histogram, hist_y: Histogram,
                          confidence: float = DEFAULT_CONFIDENCE) -> TestResult:
    """Welch's t-test over the numeric expansion of two weighted histograms.

    Used only by the ablation benchmark: it requires numeric feature values
    and assumes normality, the two restrictions the KS test lifts.
    """
    def moments(hist: Histogram) -> Tuple[int, float, float]:
        values = np.array([float(v) for v in hist], dtype=float)
        weights = np.array([hist[v] for v in hist], dtype=float)
        total = weights.sum()
        if total < 2:
            raise DistributionTestError("Welch's t-test needs >= 2 samples per side")
        mean = float((values * weights).sum() / total)
        var = float((weights * (values - mean) ** 2).sum() / (total - 1))
        return int(total), mean, var

    n, mean_x, var_x = moments(hist_x)
    m, mean_y, var_y = moments(hist_y)
    pooled = var_x / n + var_y / m
    mean_diff = mean_x - mean_y
    if pooled == 0.0:
        p = 1.0 if mean_diff == 0.0 else 0.0
        t_abs = 0.0 if mean_diff == 0.0 else math.inf
    else:
        t_abs = abs(mean_diff) / math.sqrt(pooled)
        p = math.erfc(t_abs / math.sqrt(2.0))
    return TestResult(statistic=t_abs, p_value=p, n=n, m=m,
                      threshold=float("nan"), confidence=confidence)
