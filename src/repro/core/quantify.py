"""Leakage quantification: how much does a flagged feature reveal?

The KS test answers *whether* the fixed-input and random-input feature
distributions differ; follow-up work on CPU detectors (MicroWalk's mutual
information, CacheQL's Shannon quantification) also asks *how much*.  This
module extends Owl's reports the same way: for a flagged feature we compute
the mutual information between the evidence side (fixed vs random,
equiprobable) and the observed feature value,

    MI(side; value) = H(M) - (H(P) + H(Q)) / 2,   M = (P + Q) / 2

which is exactly the Jensen–Shannon divergence of the two pooled feature
histograms — a value in [0, 1] bits per observation.  0 bits means the
observation carries no information about which side produced it; 1 bit
means one observation perfectly distinguishes the fixed input from random
inputs.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping

#: A weighted histogram: value → non-negative weight.
Histogram = Mapping[Hashable, int]


class QuantifyError(Exception):
    """Raised on degenerate inputs (empty histograms)."""


def _normalize(hist: Histogram) -> Dict[Hashable, float]:
    total = float(sum(hist.values()))
    if total <= 0:
        raise QuantifyError("cannot quantify an empty histogram")
    return {value: count / total for value, count in hist.items() if count}


def entropy_bits(hist: Histogram) -> float:
    """Shannon entropy of a weighted histogram, in bits."""
    probabilities = _normalize(hist)
    return -sum(p * math.log2(p) for p in probabilities.values())


def jensen_shannon_bits(hist_p: Histogram, hist_q: Histogram) -> float:
    """JSD(P, Q) in bits == MI(side; value) for equiprobable sides."""
    p = _normalize(hist_p)
    q = _normalize(hist_q)
    support = set(p) | set(q)
    mixture = {value: 0.5 * p.get(value, 0.0) + 0.5 * q.get(value, 0.0)
               for value in support}

    def h(dist: Dict[Hashable, float]) -> float:
        return -sum(prob * math.log2(prob)
                    for prob in dist.values() if prob > 0)

    jsd = h(mixture) - 0.5 * h(p) - 0.5 * h(q)
    # numerical floor/ceiling: JSD is mathematically in [0, 1] bits
    return min(1.0, max(0.0, jsd))


def leakage_bits_per_observation(hist_fixed: Histogram,
                                 hist_random: Histogram) -> float:
    """Bits one attacker observation of this feature reveals about whether
    the secret equals the fixed input (the quantity reported on leaks)."""
    return jensen_shannon_bits(hist_fixed, hist_random)


def observations_to_distinguish(bits_per_observation: float,
                                target_bits: float = 1.0) -> float:
    """Rough sample-complexity estimate: observations needed to accumulate
    *target_bits* of evidence (∞ for a leak-free feature)."""
    if bits_per_observation <= 0:
        return math.inf
    return target_bits / bits_per_observation
