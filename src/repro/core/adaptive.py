"""Group-sequential adaptive replica scheduling (§VIII-A budget, early).

Owl's differential phase classically records the paper's full fixed
budget — 100 fixed + 100 random replicas — before analysing anything.
For an unmistakable leak the KS statistic is astronomically significant
after 16 runs, and for a clean program every feature histogram has long
converged; the fixed budget pays the worst case on every campaign.

This module makes the replica budget *sequential*: replicas are recorded
in growing rounds (16 → 32 → 64 → budget by default), each round's
evidence folds incrementally through the associative
:meth:`~repro.core.evidence.Evidence.merge`, and after each round the
vectorized batch tests run over the evidence prefix.  A campaign stops
early when every submitted per-location test is *decided* — confidently
flagged or confidently clean — under a group-sequential alpha-spending
rule; anything near the threshold forces the next round, and the final
round always decides (the full-budget fallback).

Interim looks multiply the false-positive risk, so the per-look efficacy
threshold is not the nominal ``alpha = 1 - confidence`` but an
O'Brien–Fleming-style *spending schedule*: at information fraction
``t = recorded / budget`` a location is confidently flagged only when

    p  <=  alpha_eff(t)  =  2 * (1 - Phi(z_{1 - alpha/2} / t**rho))

which is extremely conservative early (``alpha_eff(0.16) ~ 1e-6`` at the
default 95% confidence) and relaxes to exactly ``alpha`` at ``t = 1``.
``rho`` is ``OwlConfig.adaptive_alpha_spend`` (0.5 reproduces the
classic O'Brien–Fleming ``z / sqrt(t)`` boundary).  Symmetrically, a
location is confidently clean at an interim look only when its p-value
sits above a futility boundary that starts near 0.5 and tightens
linearly to ``alpha`` at the final look.  Everything is pure math on top
of :func:`math.erfc` — no SciPy — mirroring ``chi2_sf`` in
:mod:`repro.analysis.mi.estimator`.

Determinism and resume: a stopping decision is a pure function of the
evidence prefix at a round boundary, and the boundaries themselves are a
pure function of the config.  A resumed campaign therefore never needs a
persisted decision log — evidence recorded *past* a boundary proves a
prior run decided "continue" there, so the resume path fast-forwards
over those rounds and recomputes the one live decision bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: default first-round replica count (per the larger evidence side)
DEFAULT_FIRST_ROUND = 16


# ----------------------------------------------------------------------
# pure-math normal distribution helpers (no SciPy)
# ----------------------------------------------------------------------

def normal_cdf(x: float) -> float:
    """Standard normal CDF via the complementary error function."""
    return 0.5 * math.erfc(-x / math.sqrt(2.0))


def normal_quantile(p: float) -> float:
    """Inverse standard normal CDF by bisection on :func:`normal_cdf`.

    Decision thresholds are computed once per round, so a ~60-iteration
    bisection (exact to double precision) beats carrying a rational
    approximation whose coefficients would need their own validation.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile domain is (0, 1); got {p}")
    lo, hi = -40.0, 40.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if normal_cdf(mid) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-13:
            break
    return 0.5 * (lo + hi)


def spending_threshold(alpha: float, fraction: float, rho: float) -> float:
    """O'Brien–Fleming-style efficacy p-threshold at information *fraction*.

    ``2 * (1 - Phi(z_{1-alpha/2} / t**rho))``: equals *alpha* at the
    final look and shrinks rapidly for earlier looks, so interim
    flagging costs almost none of the type-I budget.
    """
    if fraction >= 1.0:
        return alpha
    z_final = normal_quantile(1.0 - alpha / 2.0)
    return 2.0 * (1.0 - normal_cdf(z_final / fraction ** rho))


def futility_threshold(alpha: float, fraction: float) -> float:
    """Confident-clean p-threshold at information *fraction*.

    Starts near 0.5 (only emphatically null locations count as clean
    early) and tightens linearly to *alpha* at the final look, where
    "not flagged" and "clean" coincide and every location is decided.
    """
    if fraction >= 1.0:
        return alpha
    return alpha + (0.5 - alpha) * (1.0 - fraction)


# ----------------------------------------------------------------------
# round schedule
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RoundSchedule:
    """Per-round replica boundaries for both evidence sides.

    ``fractions[r]`` is the information fraction of round ``r`` measured
    on the larger side; ``fixed[r]`` / ``random[r]`` are the cumulative
    replica counts each side has recorded once round ``r``'s look runs.
    The final round always lands exactly on the configured budgets.
    """

    fractions: Tuple[float, ...]
    fixed: Tuple[int, ...]
    random: Tuple[int, ...]

    @property
    def num_rounds(self) -> int:
        return len(self.fractions)

    def boundary(self, side: str, round_index: int) -> int:
        return (self.fixed if side == "fixed"
                else self.random)[round_index]


def _base_boundaries(budget: int, rounds, first_round: int) -> List[int]:
    """Boundaries on the larger side: geometric by default."""
    if rounds is None:
        base: List[int] = []
        boundary = min(first_round, budget)
        while boundary < budget:
            base.append(boundary)
            boundary *= 2
        base.append(budget)
        return base
    if isinstance(rounds, int):
        # n looks ending on the budget, halving backwards: b, b/2, b/4, …
        looks = {budget}
        boundary = budget
        for _ in range(rounds - 1):
            boundary = max(2, boundary // 2)
            looks.add(boundary)
        return sorted(looks)
    base = sorted({min(int(b), budget) for b in rounds if int(b) > 0})
    if not base or base[-1] != budget:
        base.append(budget)
    return base


def round_schedule(fixed_runs: int, random_runs: int,
                   rounds=None,
                   first_round: int = DEFAULT_FIRST_ROUND) -> RoundSchedule:
    """Build the group-sequential look schedule for one campaign.

    *rounds* mirrors ``OwlConfig.adaptive_rounds``: ``None`` doubles from
    ``first_round`` to the budget, an int picks that many geometric
    looks, and an explicit sequence gives the boundaries (on the larger
    side) directly.  The smaller side advances at the same information
    fractions, so both sides hit their full budgets together at the
    final look.
    """
    budget = max(fixed_runs, random_runs)
    base = _base_boundaries(budget, rounds, first_round)
    fractions = [b / budget for b in base]
    return RoundSchedule(
        fractions=tuple(fractions),
        fixed=tuple(_side_boundaries(fractions, fixed_runs)),
        random=tuple(_side_boundaries(fractions, random_runs)))


def _side_boundaries(fractions: Sequence[float], side_budget: int
                     ) -> List[int]:
    bounds = [min(side_budget, max(1, math.ceil(f * side_budget)))
              for f in fractions]
    # never let a *non-final* look complete a side: completion is the
    # final round's save_evidence signal, and a resumed run must be able
    # to tell "stopped here" from "this side was simply small"
    for index in range(len(bounds) - 1):
        bounds[index] = min(bounds[index], max(1, side_budget - 1))
    bounds[-1] = side_budget
    return bounds


# ----------------------------------------------------------------------
# per-round decisions
# ----------------------------------------------------------------------

def classify_results(results, efficacy_p: float, futility_p: float
                     ) -> Tuple[int, int, int]:
    """Split one analyzer's batch-test results into decision buckets.

    Returns ``(flagged, clean, undecided)`` counts.  ``None`` results
    (degenerate features the test could not score) count as clean — the
    full-budget path never flags them either.
    """
    flagged = clean = undecided = 0
    for result in results:
        if result is None:
            clean += 1
        elif result.p_value <= efficacy_p:
            flagged += 1
        elif result.p_value >= futility_p:
            clean += 1
        else:
            undecided += 1
    return flagged, clean, undecided


@dataclass
class RoundDecision:
    """One interim (or final) look: thresholds, buckets, verdict."""

    round_index: int
    fraction: float
    fixed_boundary: int
    random_boundary: int
    efficacy_p: float
    futility_p: float
    tested: int
    flagged: int
    clean: int
    undecided: int
    stop: bool
    final: bool
    analysis_seconds: float = 0.0

    def to_dict(self) -> Dict:
        return {"round": self.round_index,
                "fraction": round(self.fraction, 6),
                "fixed_boundary": self.fixed_boundary,
                "random_boundary": self.random_boundary,
                "efficacy_p": self.efficacy_p,
                "futility_p": self.futility_p,
                "tested": self.tested, "flagged": self.flagged,
                "clean": self.clean, "undecided": self.undecided,
                "stop": self.stop, "final": self.final,
                "analysis_seconds": round(self.analysis_seconds, 6)}


#: why the adaptive phase ended
OUTCOME_EARLY_STOP = "early-stop"
OUTCOME_BUDGET = "budget-exhausted"
OUTCOME_CACHED = "cached-evidence"


@dataclass
class AdaptiveSummary:
    """The stopping story of one adaptive campaign, per side.

    Attached to :class:`~repro.core.pipeline.OwlResult` and emitted under
    the ``adaptive`` key of ``--profile`` JSON, so a report's replica
    counts are self-explaining.
    """

    fixed_budget: int
    random_budget: int
    fixed_recorded: int = 0
    random_recorded: int = 0
    rounds: List[RoundDecision] = field(default_factory=list)
    outcome: str = OUTCOME_BUDGET

    @property
    def rounds_executed(self) -> int:
        return len(self.rounds)

    @property
    def stopped_early(self) -> bool:
        return self.outcome == OUTCOME_EARLY_STOP

    @property
    def replicas_saved(self) -> int:
        return ((self.fixed_budget - self.fixed_recorded)
                + (self.random_budget - self.random_recorded))

    def side_decision(self, side: str) -> Dict:
        """Per-side stopping decision (budget vs recorded vs saved)."""
        budget = self.fixed_budget if side == "fixed" else self.random_budget
        recorded = (self.fixed_recorded if side == "fixed"
                    else self.random_recorded)
        return {"side": side, "budget": budget, "recorded": recorded,
                "saved": budget - recorded, "outcome": self.outcome}

    def to_dict(self) -> Dict:
        return {"outcome": self.outcome,
                "rounds_executed": self.rounds_executed,
                "replicas_saved": self.replicas_saved,
                "fixed": self.side_decision("fixed"),
                "random": self.side_decision("random"),
                "rounds": [decision.to_dict() for decision in self.rounds]}


def evaluate_round(analyzers, rep_evidences, random_evidence, *,
                   program_name: str, alpha: float, rho: float,
                   schedule: RoundSchedule, round_index: int):
    """Analyse one round's evidence prefix and decide stop-vs-continue.

    Runs the deferred fold + every analyzer's batched test over each
    representative's (fixed prefix, random prefix) pair — the identical
    machinery the final report uses — then classifies every submitted
    per-location result against the round's spending thresholds.

    Returns ``(rep_reports, decision)`` where ``rep_reports[i]`` is the
    per-analyzer report list for representative ``i``.  The verdict is a
    pure function of the evidence prefixes, which is what makes adaptive
    campaigns store-resumable without any persisted decision log: any
    process that reaches the same boundary recomputes the same decision.

    Definite (structural) leaks carry no p-value and never block
    stopping; the final round always stops.  Interim stopping starts at
    the *second* look so a single noisy-but-lucky first round can't end
    a campaign on its own.
    """
    from repro.analysis.multi import deferred_analysis

    fraction = schedule.fractions[round_index]
    final = round_index == schedule.num_rounds - 1
    efficacy_p = spending_threshold(alpha, fraction, rho)
    futility_p = futility_threshold(alpha, fraction)
    rep_reports = []
    tested = flagged = clean = undecided = 0
    for fixed_evidence in rep_evidences:
        reports, raw_results = deferred_analysis(
            analyzers, fixed_evidence, random_evidence, program_name)
        rep_reports.append(reports)
        for results in raw_results:
            counts = classify_results(results, efficacy_p, futility_p)
            flagged += counts[0]
            clean += counts[1]
            undecided += counts[2]
            tested += len(results)
    stop = final or (round_index >= 1 and undecided == 0)
    decision = RoundDecision(
        round_index=round_index, fraction=fraction,
        fixed_boundary=schedule.fixed[round_index],
        random_boundary=schedule.random[round_index],
        efficacy_p=efficacy_p, futility_p=futility_p,
        tested=tested, flagged=flagged, clean=clean, undecided=undecided,
        stop=stop, final=final)
    return rep_reports, decision


def validate_adaptive_rounds(rounds) -> Optional[Tuple[int, ...]]:
    """Normalize/validate an ``adaptive_rounds`` config value.

    Returns ``None``, or a tuple of boundaries, or raises ConfigError.
    An int is passed through as-is (count of looks); a sequence is
    normalized to a sorted tuple of distinct positive ints so the value
    fingerprints canonically after a JSON round-trip.
    """
    if rounds is None:
        return None
    if isinstance(rounds, bool):
        raise ConfigError("adaptive_rounds must be an int count, a "
                          "sequence of boundaries, or None")
    if isinstance(rounds, int):
        if rounds < 2:
            raise ConfigError(
                f"adaptive_rounds must be >= 2 looks, got {rounds} "
                f"(a single look is just the full-budget run)")
        return rounds
    try:
        boundaries = tuple(sorted({int(b) for b in rounds}))
    except (TypeError, ValueError):
        raise ConfigError("adaptive_rounds must be an int count, a "
                          "sequence of boundaries, or None")
    if not boundaries or any(b < 1 for b in boundaries):
        raise ConfigError(
            f"adaptive_rounds boundaries must be positive ints, got "
            f"{rounds!r}")
    return boundaries
