"""Evidence collection (§VII-A).

Repeated executions (fixed inputs on one side, random inputs on the other)
are merged into a single *evidence* object per side:

1. each new trace's kernel-invocation sequence is aligned against the
   evidence with the Myers algorithm;
2. aligned (identical-identity) invocations increment the slot's invocation
   record and their A-DCFGs are merged — the same aggregation used when
   folding warps during recording;
3. unaligned invocations become new slots, marked absent in all earlier runs.

The per-run presence vectors are what the kernel-leakage test consumes
(an input-*independent* nondeterministic launch is present in ~the same
fraction of fixed and random runs and therefore passes the distribution
test); the merged A-DCFGs provide the pooled control-flow and data-flow
histograms for the device-leakage tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.adcfg.graph import ADCFG
from repro.adcfg.merge import merge_adcfg_into
from repro.core.alignment import EditOp, myers_diff
from repro.errors import ConfigError
from repro.tracing.recorder import ProgramTrace


@dataclass
class EvidenceSlot:
    """One aligned kernel-invocation position across repeated runs.

    ``per_run_graphs`` is only populated when the evidence is built with
    ``keep_per_run=True`` (the strict per-run sampling mode): one A-DCFG
    per run, ``None`` for runs where the invocation was absent.
    """

    identity: str
    kernel_name: str
    per_run_present: List[bool]
    adcfg: ADCFG
    per_run_graphs: Optional[List[Optional[ADCFG]]] = None

    @property
    def total_count(self) -> int:
        return sum(self.per_run_present)

    def presence_histogram(self) -> dict:
        """Weighted histogram {0: absent-runs, 1: present-runs}."""
        present = self.total_count
        absent = len(self.per_run_present) - present
        hist = {}
        if absent:
            hist[0] = absent
        if present:
            hist[1] = present
        return hist


class Evidence:
    """Merged statistical view of one side's repeated executions.

    With ``keep_per_run=True`` each slot additionally retains the
    individual per-run A-DCFGs so features can be sampled *per run*
    (DESIGN.md §6's strict mode) instead of pooled — costlier in memory
    (O(runs) graphs) but immune to the correlated-lane over-dispersion of
    pooled counts.
    """

    def __init__(self, keep_per_run: bool = False) -> None:
        self.slots: List[EvidenceSlot] = []
        self.num_runs = 0
        self.keep_per_run = keep_per_run

    @classmethod
    def from_traces(cls, traces: Iterable[ProgramTrace],
                    keep_per_run: bool = False) -> "Evidence":
        evidence = cls(keep_per_run=keep_per_run)
        for trace in traces:
            evidence.add_trace(trace)
        return evidence

    @property
    def identity_sequence(self) -> List[str]:
        return [slot.identity for slot in self.slots]

    def add_trace(self, trace: ProgramTrace) -> None:
        """Fold one run's trace into the evidence (§VII-A steps 1–3)."""
        script = myers_diff(self.identity_sequence, trace.kernel_sequence)
        new_slots: List[EvidenceSlot] = []
        for step in script:
            if step.op is EditOp.EQUAL:
                slot = self.slots[step.a_index]
                invocation = trace.invocations[step.b_index]
                slot.per_run_present.append(True)
                merge_adcfg_into(slot.adcfg, invocation.adcfg)
                if slot.per_run_graphs is not None:
                    slot.per_run_graphs.append(invocation.adcfg.copy())
                new_slots.append(slot)
            elif step.op is EditOp.DELETE:
                slot = self.slots[step.a_index]
                slot.per_run_present.append(False)
                if slot.per_run_graphs is not None:
                    slot.per_run_graphs.append(None)
                new_slots.append(slot)
            else:  # INSERT: invocation unseen in all previous runs
                invocation = trace.invocations[step.b_index]
                new_slots.append(EvidenceSlot(
                    identity=invocation.identity,
                    kernel_name=invocation.kernel_name,
                    per_run_present=[False] * self.num_runs + [True],
                    adcfg=invocation.adcfg.copy(),
                    per_run_graphs=(
                        [None] * self.num_runs + [invocation.adcfg.copy()]
                        if self.keep_per_run else None)))
        self.slots = new_slots
        self.num_runs += 1

    def add_trace_repeated(self, trace: ProgramTrace, count: int) -> None:
        """Fold *count* byte-identical repetitions of *trace* in one pass.

        Replica batching deduplicates equal-input runs on a deterministic
        device into ``(trace, count)`` groups; this applies the group in
        O(1) alignments instead of *count*.  Exactly equivalent to calling
        :meth:`add_trace` *count* times: after the first fold the trace's
        kernel sequence is a subsequence of the identity sequence, so the
        remaining ``count - 1`` scripts contain only EQUAL and DELETE
        steps (slot order never changes), and every merged attribute is an
        additive count that scales linearly.
        """
        if count < 1:
            raise ConfigError(f"repetition count must be >= 1, got {count}")
        self.add_trace(trace)
        remaining = count - 1
        if remaining == 0:
            return
        script = myers_diff(self.identity_sequence, trace.kernel_sequence)
        if any(step.op is EditOp.INSERT for step in script):
            # cannot happen after the fold above; keep the slow path as a
            # defensive reference rather than corrupting slot order
            for _ in range(remaining):
                self.add_trace(trace)
            return
        for step in script:
            slot = self.slots[step.a_index]
            if step.op is EditOp.EQUAL:
                invocation = trace.invocations[step.b_index]
                slot.per_run_present.extend([True] * remaining)
                merge_adcfg_into(slot.adcfg, invocation.adcfg,
                                 scale=remaining)
                if slot.per_run_graphs is not None:
                    slot.per_run_graphs.extend(
                        invocation.adcfg.copy() for _ in range(remaining))
            else:  # DELETE
                slot.per_run_present.extend([False] * remaining)
                if slot.per_run_graphs is not None:
                    slot.per_run_graphs.extend([None] * remaining)
        self.num_runs += remaining

    def merge(self, other: "Evidence") -> "Evidence":
        """Fold *other* — a later block of runs — into this evidence.

        The parallel recording backend folds each worker's chunk of runs
        into a partial evidence and merges the partials in chunk order;
        this is the chunk-level analogue of :meth:`add_trace`: slots are
        Myers-aligned by identity, aligned slots concatenate their per-run
        presence vectors (run order is preserved because chunks are
        contiguous and merged left-to-right) and aggregate their A-DCFGs,
        unaligned slots are padded with absent runs on the missing side.

        *other* is consumed: its slots may be adopted wholesale, so it must
        not be used afterwards.
        """
        if self.keep_per_run != other.keep_per_run:
            raise ConfigError(
                "cannot merge evidences with different keep_per_run modes")
        script = myers_diff(self.identity_sequence, other.identity_sequence)
        new_slots: List[EvidenceSlot] = []
        for step in script:
            if step.op is EditOp.EQUAL:
                slot = self.slots[step.a_index]
                other_slot = other.slots[step.b_index]
                slot.per_run_present.extend(other_slot.per_run_present)
                merge_adcfg_into(slot.adcfg, other_slot.adcfg)
                if slot.per_run_graphs is not None:
                    slot.per_run_graphs.extend(other_slot.per_run_graphs or [])
                new_slots.append(slot)
            elif step.op is EditOp.DELETE:
                slot = self.slots[step.a_index]
                slot.per_run_present.extend([False] * other.num_runs)
                if slot.per_run_graphs is not None:
                    slot.per_run_graphs.extend([None] * other.num_runs)
                new_slots.append(slot)
            else:  # INSERT: slot unseen in this evidence's runs
                other_slot = other.slots[step.b_index]
                other_slot.per_run_present = (
                    [False] * self.num_runs + other_slot.per_run_present)
                if other_slot.per_run_graphs is not None:
                    other_slot.per_run_graphs = (
                        [None] * self.num_runs + other_slot.per_run_graphs)
                new_slots.append(other_slot)
        self.slots = new_slots
        self.num_runs += other.num_runs
        return self

    def slot_by_identity(self, identity: str) -> Optional[EvidenceSlot]:
        """First slot with the given identity (None when absent)."""
        for slot in self.slots:
            if slot.identity == identity:
                return slot
        return None

    def __repr__(self) -> str:
        return f"Evidence(runs={self.num_runs}, slots={len(self.slots)})"


@dataclass(frozen=True)
class AlignedSlotPair:
    """One position of the fixed/random evidence alignment."""

    fixed: Optional[EvidenceSlot]
    random: Optional[EvidenceSlot]

    @property
    def aligned(self) -> bool:
        return self.fixed is not None and self.random is not None

    @property
    def identity(self) -> str:
        slot = self.fixed if self.fixed is not None else self.random
        assert slot is not None
        return slot.identity


def align_evidence(fixed: Evidence, random: Evidence) -> List[AlignedSlotPair]:
    """Myers-align the two evidences' slot sequences for the leakage test."""
    script = myers_diff(fixed.identity_sequence, random.identity_sequence)
    pairs: List[AlignedSlotPair] = []
    for step in script:
        if step.op is EditOp.EQUAL:
            pairs.append(AlignedSlotPair(fixed=fixed.slots[step.a_index],
                                         random=random.slots[step.b_index]))
        elif step.op is EditOp.DELETE:
            pairs.append(AlignedSlotPair(fixed=fixed.slots[step.a_index],
                                         random=None))
        else:
            pairs.append(AlignedSlotPair(fixed=None,
                                         random=random.slots[step.b_index]))
    return pairs
