"""Leak records and human-readable reports.

Owl's output is a list of located leaks: the kernel (by host call-stack
identity), the basic block, and — for data-flow leaks — the memory
instruction, together with the failed distribution test's statistic and
p-value, so a developer can go from report to patch.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class LeakType(enum.Enum):
    """The three GPU-related leak categories of §IV-A."""

    KERNEL = "kernel"
    DEVICE_CONTROL_FLOW = "device_control_flow"
    DEVICE_DATA_FLOW = "device_data_flow"


@dataclass(frozen=True)
class Leak:
    """One located side-channel leak."""

    leak_type: LeakType
    kernel_identity: str
    kernel_name: str
    #: basic-block label ("" for kernel-level leaks)
    block: str = ""
    #: memory-instruction ordinal within the block (-1 when n/a)
    instr: int = -1
    p_value: float = 0.0
    statistic: float = 0.0
    #: estimated leakage in bits per attacker observation (Jensen–Shannon
    #: mutual information between the fixed/random feature histograms);
    #: populated when the analyzer runs with ``quantify=True``
    bits: float = 0.0
    #: bias-corrected mutual information between input class and the
    #: feature, in bits; populated by the MI analyzer
    #: (:mod:`repro.analysis.mi`), 0.0 for KS-only findings
    mi_bits: float = 0.0
    detail: str = ""

    @property
    def location(self) -> Tuple[str, str, int]:
        """Code location key used for de-duplication."""
        return (self.kernel_name, self.block, self.instr)

    def render(self) -> str:
        parts = [f"[{self.leak_type.value}]", self.kernel_name]
        if self.block:
            parts.append(f"block={self.block}")
        if self.instr >= 0:
            parts.append(f"instr={self.instr}")
        parts.append(f"p={self.p_value:.4g}")
        parts.append(f"D={self.statistic:.4g}")
        if self.bits > 0:
            parts.append(f"~{self.bits:.3f} bits/obs")
        if self.mi_bits > 0:
            parts.append(f"MI={self.mi_bits:.3f} bits")
        if self.detail:
            parts.append(f"({self.detail})")
        return " ".join(parts)


@dataclass
class LeakageReport:
    """All leaks found for one program, with Table-III style counters."""

    program_name: str
    leaks: List[Leak] = field(default_factory=list)
    num_fixed_runs: int = 0
    num_random_runs: int = 0
    confidence: float = 0.95
    #: which detector produced the report: "ks", "mi", or "both"
    analyzer: str = "ks"
    #: KS-vs-MI cross-validation section (``analyzer="both"`` only):
    #: agreement counters, ks_only/mi_only location rows, and the two
    #: embedded single-analyzer reports
    cross_validation: Optional[Dict] = None

    def add(self, leak: Leak) -> None:
        self.leaks.append(leak)

    def extend(self, leaks: List[Leak]) -> None:
        self.leaks.extend(leaks)

    def of_type(self, leak_type: LeakType) -> List[Leak]:
        return [leak for leak in self.leaks if leak.leak_type is leak_type]

    @property
    def kernel_leaks(self) -> List[Leak]:
        return self.of_type(LeakType.KERNEL)

    @property
    def control_flow_leaks(self) -> List[Leak]:
        return self.of_type(LeakType.DEVICE_CONTROL_FLOW)

    @property
    def data_flow_leaks(self) -> List[Leak]:
        return self.of_type(LeakType.DEVICE_DATA_FLOW)

    @property
    def has_leaks(self) -> bool:
        return bool(self.leaks)

    def counts(self) -> Dict[str, int]:
        """Table III row: counts per leak type."""
        return {
            "kernel": len(self.kernel_leaks),
            "control_flow": len(self.control_flow_leaks),
            "data_flow": len(self.data_flow_leaks),
        }

    def dedup_by_location(self) -> "LeakageReport":
        """Collapse leaks sharing one code location.

        The paper's manual screening step: compiler loop unrolling (and, in
        our simulator, repeated launches of one kernel) can make several
        detections point at the same source location; keep the most
        significant detection per ``(kernel, block, instr)``.
        """
        best: Dict[Tuple[LeakType, str, str, int], Leak] = {}
        order: List[Tuple[LeakType, str, str, int]] = []
        for leak in self.leaks:
            key = (leak.leak_type,) + leak.location
            if key not in best:
                best[key] = leak
                order.append(key)
            elif leak.p_value < best[key].p_value:
                best[key] = leak
        deduped = LeakageReport(program_name=self.program_name,
                                num_fixed_runs=self.num_fixed_runs,
                                num_random_runs=self.num_random_runs,
                                confidence=self.confidence,
                                analyzer=self.analyzer,
                                cross_validation=self.cross_validation)
        deduped.leaks = [best[key] for key in order]
        return deduped

    # ------------------------------------------------------------------
    # persistence (CI-style workflows: audit once, diff reports over time)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """A JSON-ready representation of the report."""
        data = {
            "program_name": self.program_name,
            "num_fixed_runs": self.num_fixed_runs,
            "num_random_runs": self.num_random_runs,
            "confidence": self.confidence,
            "analyzer": self.analyzer,
            "leaks": [{
                "leak_type": leak.leak_type.value,
                "kernel_identity": leak.kernel_identity,
                "kernel_name": leak.kernel_name,
                "block": leak.block,
                "instr": leak.instr,
                "p_value": leak.p_value,
                "statistic": leak.statistic,
                "bits": leak.bits,
                "mi_bits": leak.mi_bits,
                "detail": leak.detail,
            } for leak in self.leaks],
        }
        if self.cross_validation is not None:
            data["cross_validation"] = self.cross_validation
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "LeakageReport":
        """Inverse of :meth:`to_dict`."""
        report = cls(program_name=data["program_name"],
                     num_fixed_runs=data["num_fixed_runs"],
                     num_random_runs=data["num_random_runs"],
                     confidence=data["confidence"],
                     analyzer=data.get("analyzer", "ks"),
                     cross_validation=data.get("cross_validation"))
        for entry in data["leaks"]:
            report.add(Leak(
                leak_type=LeakType(entry["leak_type"]),
                kernel_identity=entry["kernel_identity"],
                kernel_name=entry["kernel_name"],
                block=entry["block"], instr=entry["instr"],
                p_value=entry["p_value"], statistic=entry["statistic"],
                bits=entry.get("bits", 0.0),
                mi_bits=entry.get("mi_bits", 0.0), detail=entry["detail"]))
        return report

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LeakageReport":
        return cls.from_dict(json.loads(text))

    def render(self) -> str:
        lines = [
            f"Leakage report for {self.program_name}",
            f"  fixed runs: {self.num_fixed_runs}, "
            f"random runs: {self.num_random_runs}, "
            f"confidence: {self.confidence}, analyzer: {self.analyzer}",
            f"  kernel leaks: {len(self.kernel_leaks)}",
            f"  device control-flow leaks: {len(self.control_flow_leaks)}",
            f"  device data-flow leaks: {len(self.data_flow_leaks)}",
        ]
        if self.cross_validation is not None:
            cv = self.cross_validation
            lines.append(
                f"  cross-validation: {cv.get('agreements', 0)} agreements, "
                f"{len(cv.get('ks_only', []))} KS-only, "
                f"{len(cv.get('mi_only', []))} MI-only")
        for leak in self.leaks:
            lines.append("  " + leak.render())
        return "\n".join(lines)
