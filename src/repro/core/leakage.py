"""Leakage tests (§VII-C): kernel, device control-flow, device data-flow.

Given the fixed-input and random-input evidence, the analyzer decides per
feature whether the two sides follow the same distribution:

* **kernel leakage** — per aligned invocation slot, the per-run presence
  samples are compared (unaligned slots, present on one side only, are
  immediate kernel leaks); an input-independent nondeterministic launch is
  present in similar fractions of both sides and passes;
* **device control-flow leakage** — per basic block, the flattened
  control-flow transition matrix (eq. 8) of the fixed evidence is tested
  against the random side's; blocks executed on only one side are direct
  control-flow leaks;
* **device data-flow leakage** — per (block visit, memory instruction), the
  address-offset histograms ``H_addr`` are tested; instruction slots that
  exist on only one side are *reclassified as control flow* per the paper
  (the difference stems from differing visit counts, which the transition
  matrices already capture) and skipped here.

The analysis walks the aligned evidence **once**: the traversal folds every
feature's histogram pair and hands it to a :class:`_TestSink`, which either
tests it on the spot (the scalar reference path) or defers it into a single
batched test call covering the whole A-DCFG — one NumPy pass over every
kernel/control-flow/data-flow feature, with the leak emission order
identical on both paths.

The statistical test itself is pluggable: :class:`LeakageAnalyzer` is the
KS detector, and subclasses (the mutual-information detector in
:mod:`repro.analysis.mi`) swap the per-feature test and the leak's
statistical fields via the detector hooks while reusing the traversal
unchanged.  A deferred sink is *replayable* — ``finish(analyzer)`` can run
several detectors over one recorded fold, which is how
``OwlConfig(analyzer="both")`` shares a single evidence pass.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import profiling
from repro.adcfg.graph import ADCFG
from repro.core.evidence import AlignedSlotPair, Evidence, align_evidence
from repro.core.kstest import (
    DEFAULT_CONFIDENCE,
    DistributionTestError,
    TestResult,
    ks_test,
    ks_test_batch,
    ks_test_weighted,
    welch_t_test,
    welch_t_test_weighted,
)
from repro.core.quantify import leakage_bits_per_observation
from repro.core.report import Leak, LeakType, LeakageReport
from repro.core.transition import transition_matrix
from repro.errors import ConfigError


@dataclass(frozen=True)
class LeakageConfig:
    """Tuning knobs for the leakage tests.

    ``test`` selects the distribution test: ``"ks"`` (the paper's choice) or
    ``"welch"`` (the prior-work baseline, exposed for the ablation bench).

    ``offset_granularity`` models the attacker's spatial resolution: data-flow
    offsets are floored to multiples of it before testing.  1 byte is the
    paper's noise-free NoC-level attacker; 64 models a cache-line attacker;
    coarser values weaken the attacker until in-table lookups vanish.

    ``quantify`` additionally estimates each leak's strength in bits per
    observation (Jensen–Shannon mutual information of the two feature
    histograms, see :mod:`repro.core.quantify`).
    """

    confidence: float = DEFAULT_CONFIDENCE
    sample_size_cap: Optional[int] = None
    test: str = "ks"
    offset_granularity: int = 1
    quantify: bool = False
    #: "pooled" (the paper's histograms) or "per_run" (strict mode: one
    #: feature sample per run — requires evidence built with
    #: ``keep_per_run=True``; immune to correlated-lane over-dispersion)
    sampling: str = "pooled"
    #: evaluate all KS features in one vectorized NumPy pass
    #: (:func:`~repro.core.kstest.ks_test_batch`); False forces the scalar
    #: per-feature reference path.  Only affects ``test="ks"``.
    vectorized: bool = True
    #: entropy bias correction for the MI detector
    #: (:mod:`repro.analysis.mi`): "miller_madow" (default), "jackknife",
    #: "shrinkage", or "none" (raw plug-in estimate)
    mi_bias_correction: str = "miller_madow"
    #: minimum bias-corrected MI (bits) for the MI detector to flag a
    #: feature on top of G-test significance; 0 disables the floor
    mi_min_bits: float = 0.0

    def __post_init__(self) -> None:
        if self.test not in ("ks", "welch"):
            raise ConfigError(
                f"unknown distribution test {self.test!r}; valid choices: 'ks', 'welch'")
        if self.offset_granularity < 1:
            raise ConfigError("offset_granularity must be >= 1 byte")
        if self.sampling not in ("pooled", "per_run"):
            raise ConfigError(
                f"unknown sampling mode {self.sampling!r}; valid choices: 'pooled', 'per_run'")
        if self.mi_bias_correction not in ("none", "miller_madow",
                                           "jackknife", "shrinkage"):
            raise ConfigError(
                f"unknown MI bias correction {self.mi_bias_correction!r}; "
                "valid choices: 'none', 'miller_madow', 'jackknife', "
                "'shrinkage'")
        if self.mi_min_bits < 0:
            raise ConfigError("mi_min_bits must be >= 0")


#: One submitted feature test: ``("plain", x, y)`` with raw sample lists,
#: or ``("weighted", hist_x, hist_y, order)`` with weighted histograms.
_Request = Tuple
#: Turns a group's test results (None where degenerate) into its leaks,
#: filling statistical fields via the given analyzer's hooks.
_Resolver = Callable[["LeakageAnalyzer", List[Optional[TestResult]]],
                     List[Leak]]


class _TestSink:
    """Single-traversal test dispatch for the leakage analysis.

    The traversal emits definite leaks directly and submits *groups* — a
    list of feature requests plus a resolver turning their results into
    leaks.  Deferred mode (vectorized) accumulates every request across
    the whole traversal and evaluates them in one batched test call
    (:meth:`LeakageAnalyzer._batch_test`) before running the resolvers in
    traversal order; inline mode (Welch, or ``vectorized=False``) tests
    and resolves each group on the spot.  The leak emission order is
    identical on both paths because groups resolve in submission order
    either way.

    A deferred sink records analyzer-*independent* emissions (the
    statistical fields come from the analyzer hooks at finish time), so
    ``finish(analyzer)`` may be called once per detector to replay the
    same fold under several tests.
    """

    def __init__(self, analyzer: "LeakageAnalyzer", defer: bool) -> None:
        self._analyzer = analyzer
        self._defer = defer
        self._requests: List[_Request] = []
        # ordered emissions: ("definite", leak_fields) for test-free leaks,
        # or ("group", start, count, resolve) for a submitted test group
        self._emissions: List[Tuple] = []
        self._leaks: List[Leak] = []

    def definite(self, **fields) -> None:
        """Emit a definite leak (no test needed).

        ``fields`` carry the location (leak type, kernel, block, instr) and
        detail; the statistical fields are filled per analyzer via
        :meth:`LeakageAnalyzer._definite_fields`.
        """
        if self._defer:
            self._emissions.append(("definite", fields))
        else:
            self._leaks.append(
                Leak(**fields, **self._analyzer._definite_fields()))

    def plain(self, x: List[float], y: List[float],
              resolve: Callable[["LeakageAnalyzer", Optional[TestResult]],
                                List[Leak]]) -> None:
        """Submit one plain-sample test."""
        self.group([("plain", x, y)],
                   lambda analyzer, results: resolve(analyzer, results[0]))

    def weighted(self, hist_x: Dict, hist_y: Dict,
                 resolve: Callable[["LeakageAnalyzer", Optional[TestResult]],
                                   List[Leak]],
                 order: Optional[Dict] = None) -> None:
        """Submit one weighted-histogram test."""
        self.group([("weighted", hist_x, hist_y, order)],
                   lambda analyzer, results: resolve(analyzer, results[0]))

    def group(self, requests: List[_Request], resolve: _Resolver) -> None:
        """Submit a group of tests whose results resolve together."""
        if self._defer:
            start = len(self._requests)
            for request in requests:
                if request[0] == "plain":
                    # a weighted ECDF over a sample's value counts is the
                    # sample's ECDF: statistic and sizes are unchanged
                    self._requests.append(
                        (Counter(request[1]), Counter(request[2])))
                else:
                    self._requests.append(
                        (request[1], request[2], request[3]))
            self._emissions.append(("group", start, len(requests), resolve))
        else:
            self._leaks.extend(
                resolve(self._analyzer, [self._run(r) for r in requests]))

    def _run(self, request: _Request) -> Optional[TestResult]:
        if request[0] == "plain":
            try:
                return self._analyzer._plain_test(request[1], request[2])
            except DistributionTestError:
                return None
        return self._analyzer._categorical_test(request[1], request[2],
                                                order=request[3])

    def finish(self, analyzer: Optional["LeakageAnalyzer"] = None,
               results: Optional[List[Optional[TestResult]]] = None
               ) -> List[Leak]:
        """Evaluate the recorded requests and return all leaks in order.

        Deferred sinks are replayable: each call runs *analyzer*'s batched
        test over the whole request list and resolves the emissions with
        its field hooks, so several detectors can share one traversal
        (inline sinks are single-analyzer; passing a different one there
        is a programming error).  Callers that already ran the batched
        test — the adaptive scheduler needs the raw per-location results
        for its stopping decision — pass them via *results* so the batch
        isn't computed twice.
        """
        if analyzer is None:
            analyzer = self._analyzer
        if not self._defer:
            assert analyzer is self._analyzer, \
                "inline sinks already tested under their own analyzer"
            assert results is None, "inline sinks carry no batch results"
            return self._leaks
        if results is None:
            results = analyzer._batch_test(self._requests)
        elif len(results) != len(self._requests):
            raise ValueError(
                f"batch results for {len(results)} requests passed to a "
                f"sink holding {len(self._requests)}")
        leaks: List[Leak] = []
        for emission in self._emissions:
            if emission[0] == "definite":
                leaks.append(Leak(**emission[1],
                                  **analyzer._definite_fields()))
            else:
                _kind, start, count, resolve = emission
                leaks.extend(resolve(analyzer, results[start:start + count]))
        return leaks


class LeakageAnalyzer:
    """Runs the three leakage tests over a fixed/random evidence pair.

    This class is the KS detector; the traversal is detector-agnostic and
    subclasses swap the statistical test by overriding the hooks ``mode``,
    ``batch_phase``, :meth:`_defer`, :meth:`_plain_test`,
    :meth:`_categorical_test`, :meth:`_batch_test`,
    :meth:`_definite_fields` and :meth:`_flagged_fields` — see
    :class:`repro.analysis.mi.MIAnalyzer`.
    """

    #: analyzer name recorded in report metadata
    mode = "ks"
    #: profiling sub-phase charged for the batched test pass
    batch_phase = "analysis_ks"

    def __init__(self, config: Optional[LeakageConfig] = None) -> None:
        self.config = config or LeakageConfig()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def analyze(self, fixed: Evidence, random: Evidence,
                program_name: str = "program") -> LeakageReport:
        prof = profiling.profiler()
        started = time.perf_counter()
        pairs = align_evidence(fixed, random)
        if prof is not None:
            prof.add("analysis_align", time.perf_counter() - started)
        return self.analyze_pairs(pairs, program_name=program_name,
                                  num_fixed_runs=fixed.num_runs,
                                  num_random_runs=random.num_runs)

    def analyze_pairs(self, pairs: List[AlignedSlotPair], *,
                      program_name: str = "program",
                      num_fixed_runs: int = 0,
                      num_random_runs: int = 0) -> LeakageReport:
        """Run the tests over pre-aligned slot pairs.

        Split out from :meth:`analyze` so ``analyzer="both"`` can align
        once and hand the same pairs to each detector.
        """
        prof = profiling.profiler()
        report = self.new_report(program_name, num_fixed_runs,
                                 num_random_runs)
        sink = _TestSink(self, self._defer())
        started = time.perf_counter()
        self._fold_pairs(pairs, sink)
        if prof is not None:
            prof.add("analysis_fold", time.perf_counter() - started)
        started = time.perf_counter()
        report.extend(sink.finish())
        if prof is not None:
            prof.add(self.batch_phase, time.perf_counter() - started)
        return report

    def new_report(self, program_name: str, num_fixed_runs: int,
                   num_random_runs: int) -> LeakageReport:
        """An empty report carrying this detector's metadata."""
        return LeakageReport(program_name=program_name,
                             num_fixed_runs=num_fixed_runs,
                             num_random_runs=num_random_runs,
                             confidence=self.config.confidence,
                             analyzer=self.mode)

    def _fold_pairs(self, pairs: List[AlignedSlotPair],
                    sink: _TestSink) -> None:
        """The single evidence traversal feeding every feature to *sink*."""
        for pair in pairs:
            self._kernel_test(pair, sink)
            if pair.aligned:
                self._device_tests(pair, sink)

    def _defer(self) -> bool:
        """Whether this detector's tests batch into one vectorized pass."""
        return self.config.test == "ks" and self.config.vectorized

    # ------------------------------------------------------------------
    # kernel leakage
    # ------------------------------------------------------------------

    def _kernel_test(self, pair: AlignedSlotPair, sink: _TestSink) -> None:
        if not pair.aligned:
            slot = pair.fixed if pair.fixed is not None else pair.random
            assert slot is not None
            side = "fixed" if pair.fixed is not None else "random"
            sink.definite(
                leak_type=LeakType.KERNEL, kernel_identity=slot.identity,
                kernel_name=slot.kernel_name,
                detail=f"invocation only under {side} inputs")
            return
        fixed_slot, random_slot = pair.fixed, pair.random
        assert fixed_slot is not None and random_slot is not None
        samples_fixed = [1.0 if p else 0.0 for p in fixed_slot.per_run_present]
        samples_random = [1.0 if p else 0.0 for p in random_slot.per_run_present]
        if samples_fixed == samples_random:
            return

        def resolve(analyzer: "LeakageAnalyzer",
                    result: Optional[TestResult]) -> List[Leak]:
            if result is None or not result.rejected:
                return []
            return [Leak(
                leak_type=LeakType.KERNEL,
                kernel_identity=fixed_slot.identity,
                kernel_name=fixed_slot.kernel_name,
                detail=(f"invocation in {fixed_slot.total_count}/"
                        f"{len(fixed_slot.per_run_present)} fixed vs "
                        f"{random_slot.total_count}/"
                        f"{len(random_slot.per_run_present)} random runs"),
                **analyzer._flagged_fields(
                    result, fixed_slot.presence_histogram(),
                    random_slot.presence_histogram()))]

        sink.plain(samples_fixed, samples_random, resolve)

    # ------------------------------------------------------------------
    # device leakage
    # ------------------------------------------------------------------

    def _device_tests(self, pair: AlignedSlotPair, sink: _TestSink) -> None:
        assert pair.fixed is not None and pair.random is not None
        if self.config.sampling == "per_run":
            if (pair.fixed.per_run_graphs is None
                    or pair.random.per_run_graphs is None):
                raise ConfigError(
                    "per_run sampling requires evidence built with "
                    "keep_per_run=True")
            self._per_run_device_tests(pair, sink)
            return
        fixed_graph = pair.fixed.adcfg
        random_graph = pair.random.adcfg
        self._control_flow_tests(pair.identity, fixed_graph, random_graph,
                                 sink)
        self._data_flow_tests(pair.identity, fixed_graph, random_graph, sink)

    def _control_flow_tests(self, identity: str, fixed_graph: ADCFG,
                            random_graph: ADCFG, sink: _TestSink) -> None:
        labels = sorted(set(fixed_graph.nodes) | set(random_graph.nodes))
        for label in labels:
            in_fixed = label in fixed_graph.nodes
            in_random = label in random_graph.nodes
            if in_fixed != in_random:
                side = "fixed" if in_fixed else "random"
                sink.definite(
                    leak_type=LeakType.DEVICE_CONTROL_FLOW,
                    kernel_identity=identity,
                    kernel_name=fixed_graph.kernel_name,
                    block=label,
                    detail=f"basic block executed only under {side} inputs")
                continue
            hist_fixed = transition_matrix(fixed_graph, label).histogram()
            hist_random = transition_matrix(random_graph, label).histogram()
            if hist_fixed == hist_random:
                continue

            def resolve(analyzer: "LeakageAnalyzer",
                        result: Optional[TestResult], label=label,
                        hist_fixed=hist_fixed,
                        hist_random=hist_random) -> List[Leak]:
                if result is None or not result.rejected:
                    return []
                return [Leak(
                    leak_type=LeakType.DEVICE_CONTROL_FLOW,
                    kernel_identity=identity,
                    kernel_name=fixed_graph.kernel_name,
                    block=label,
                    detail="control-flow transition matrix deviates",
                    **analyzer._flagged_fields(result, hist_fixed,
                                               hist_random))]

            sink.weighted(hist_fixed, hist_random, resolve)

    def _data_flow_tests(self, identity: str, fixed_graph: ADCFG,
                         random_graph: ADCFG, sink: _TestSink) -> None:
        common_labels = sorted(set(fixed_graph.nodes) & set(random_graph.nodes))
        for label in common_labels:
            fixed_node = fixed_graph.nodes[label]
            random_node = random_graph.nodes[label]
            fixed_slots = {(v, i): r for v, i, r in fixed_node.iter_instructions()}
            random_slots = {(v, i): r
                            for v, i, r in random_node.iter_instructions()}
            # slots on one side only are control-flow differences (already
            # visible to the transition-matrix test): skip them here
            tests: List[Tuple[Tuple[int, int], Dict, Dict]] = []
            for key in sorted(set(fixed_slots) & set(random_slots)):
                record_fixed = self._coarsen(fixed_slots[key].counts)
                record_random = self._coarsen(random_slots[key].counts)
                if record_fixed == record_random:
                    continue
                tests.append((key, record_fixed, record_random))
            if not tests:
                continue

            def resolve(analyzer: "LeakageAnalyzer",
                        results: List[Optional[TestResult]], label=label,
                        tests=tests) -> List[Leak]:
                # group results per instruction across visits; report the
                # most significant failing visit per instruction
                worst: Dict[int, Tuple[TestResult, int]] = {}
                fields_of: Dict[int, Dict[str, float]] = {}
                for (key, record_fixed, record_random), result in zip(tests,
                                                                      results):
                    if result is None or not result.rejected:
                        continue
                    visit, instr = key
                    current = worst.get(instr)
                    if current is None or result.p_value < current[0].p_value:
                        worst[instr] = (result, visit)
                        fields_of[instr] = analyzer._flagged_fields(
                            result, record_fixed, record_random)
                return [Leak(
                    leak_type=LeakType.DEVICE_DATA_FLOW,
                    kernel_identity=identity,
                    kernel_name=fixed_graph.kernel_name,
                    block=label, instr=instr,
                    detail=(f"address histogram deviates "
                            f"(e.g. visit {worst[instr][1]})"),
                    **fields_of[instr])
                    for instr in sorted(worst)]

            sink.group([("weighted", record_fixed, record_random, None)
                        for _key, record_fixed, record_random in tests],
                       resolve)

    # ------------------------------------------------------------------
    # strict per-run sampling mode
    # ------------------------------------------------------------------

    def _per_run_device_tests(self, pair: AlignedSlotPair,
                              sink: _TestSink) -> None:
        """Device tests where each run contributes one sample per feature.

        For every feature coordinate (a transition type for control flow, a
        normalised address for data flow) the per-run counts form the two
        KS samples (n = m = runs).  Correlated lanes inflate a run's count
        but not the *number of samples*, so the test stays calibrated under
        run-level randomness — the trade-off is O(runs) retained graphs.
        """
        assert pair.fixed is not None and pair.random is not None
        identity = pair.identity
        fixed_graphs = [g for g in pair.fixed.per_run_graphs or []
                        if g is not None]
        random_graphs = [g for g in pair.random.per_run_graphs or []
                         if g is not None]
        if not fixed_graphs or not random_graphs:
            return
        kernel_name = fixed_graphs[0].kernel_name

        fixed_labels = set().union(*(set(g.nodes) for g in fixed_graphs))
        random_labels = set().union(*(set(g.nodes) for g in random_graphs))
        for label in sorted(fixed_labels | random_labels):
            in_fixed = label in fixed_labels
            in_random = label in random_labels
            if in_fixed != in_random:
                side = "fixed" if in_fixed else "random"
                sink.definite(
                    leak_type=LeakType.DEVICE_CONTROL_FLOW,
                    kernel_identity=identity, kernel_name=kernel_name,
                    block=label,
                    detail=f"basic block executed only under {side} inputs")
                continue
            self._per_run_cf_test(identity, kernel_name, label,
                                  fixed_graphs, random_graphs, sink)
            self._per_run_df_test(identity, kernel_name, label,
                                  fixed_graphs, random_graphs, sink)

    @staticmethod
    def _per_run_cf_samples(graphs, label):
        histograms = []
        for graph in graphs:
            if label in graph.nodes:
                histograms.append(transition_matrix(graph, label).histogram())
            else:
                histograms.append({})
        return histograms

    def _per_run_cf_test(self, identity, kernel_name, label,
                         fixed_graphs, random_graphs,
                         sink: _TestSink) -> None:
        fixed_hists = self._per_run_cf_samples(fixed_graphs, label)
        random_hists = self._per_run_cf_samples(random_graphs, label)
        keys = set()
        for hist in fixed_hists + random_hists:
            keys.update(hist)
        tests: List[Tuple[List[float], List[float]]] = []
        for key in sorted(keys):
            x = [float(hist.get(key, 0)) for hist in fixed_hists]
            y = [float(hist.get(key, 0)) for hist in random_hists]
            if x == y:
                continue
            tests.append((x, y))
        if not tests:
            return

        def resolve(analyzer: "LeakageAnalyzer",
                    results: List[Optional[TestResult]]) -> List[Leak]:
            worst: Optional[TestResult] = None
            for result in results:
                if result is None:
                    continue
                if result.rejected and (worst is None
                                        or result.p_value < worst.p_value):
                    worst = result
            if worst is None:
                return []
            return [Leak(
                leak_type=LeakType.DEVICE_CONTROL_FLOW,
                kernel_identity=identity, kernel_name=kernel_name,
                block=label,
                detail="per-run transition counts deviate",
                **analyzer._flagged_fields(worst, _pool(fixed_hists),
                                           _pool(random_hists)))]

        sink.group([("plain", x, y) for x, y in tests], resolve)

    def _per_run_df_test(self, identity, kernel_name, label,
                         fixed_graphs, random_graphs,
                         sink: _TestSink) -> None:
        def slot_maps(graphs):
            per_run = []
            for graph in graphs:
                node = graph.nodes.get(label)
                slots = {}
                if node is not None:
                    for visit, instr, record in node.iter_instructions():
                        slots[(visit, instr)] = self._coarsen(record.counts)
                per_run.append(slots)
            return per_run

        fixed_runs = slot_maps(fixed_graphs)
        random_runs = slot_maps(random_graphs)
        common_slots = (set().union(*(set(r) for r in fixed_runs))
                        & set().union(*(set(r) for r in random_runs)))
        tests_per_slot: List[Tuple[Tuple[int, int], List[Tuple]]] = []
        for slot_key in sorted(common_slots):
            addresses = set()
            for run in fixed_runs + random_runs:
                addresses.update(run.get(slot_key, {}))
            slot_tests = []
            for address in sorted(addresses):
                x = [float(run.get(slot_key, {}).get(address, 0))
                     for run in fixed_runs]
                y = [float(run.get(slot_key, {}).get(address, 0))
                     for run in random_runs]
                if x == y:
                    continue
                slot_tests.append((x, y))
            if slot_tests:
                tests_per_slot.append((slot_key, slot_tests))
        if not tests_per_slot:
            return

        def resolve(analyzer: "LeakageAnalyzer",
                    results: List[Optional[TestResult]]) -> List[Leak]:
            worst: Dict[int, Tuple[TestResult, int]] = {}
            fields_of: Dict[int, Dict[str, float]] = {}
            position = 0
            for slot_key, slot_tests in tests_per_slot:
                slot_worst: Optional[TestResult] = None
                for _ in slot_tests:
                    result = results[position]
                    position += 1
                    if result is None:
                        continue
                    if result.rejected and (
                            slot_worst is None
                            or result.p_value < slot_worst.p_value):
                        slot_worst = result
                if slot_worst is None:
                    continue
                visit, instr = slot_key
                current = worst.get(instr)
                if current is None or slot_worst.p_value < current[0].p_value:
                    worst[instr] = (slot_worst, visit)
                    fields_of[instr] = analyzer._flagged_fields(
                        slot_worst,
                        _pool([run.get(slot_key, {}) for run in fixed_runs]),
                        _pool([run.get(slot_key, {}) for run in random_runs]))
            return [Leak(
                leak_type=LeakType.DEVICE_DATA_FLOW, kernel_identity=identity,
                kernel_name=kernel_name, block=label, instr=instr,
                detail=f"per-run address counts deviate (e.g. visit {visit})",
                **fields_of[instr])
                for instr, (result, visit) in sorted(worst.items())]

        sink.group([("plain", x, y)
                    for _slot_key, slot_tests in tests_per_slot
                    for x, y in slot_tests], resolve)

    # ------------------------------------------------------------------
    # attacker model and quantification helpers
    # ------------------------------------------------------------------

    def _coarsen(self, counts: Dict) -> Dict:
        """Floor data-flow offsets to the attacker's spatial granularity."""
        granularity = self.config.offset_granularity
        if granularity == 1:
            return counts
        coarsened: Dict = {}
        for (alloc_label, offset), count in counts.items():
            key = (alloc_label, (offset // granularity) * granularity)
            coarsened[key] = coarsened.get(key, 0) + count
        return coarsened

    def _bits(self, hist_fixed: Dict, hist_random: Dict) -> float:
        """JSD bits for a flagged feature (0 unless quantify is enabled)."""
        if not self.config.quantify:
            return 0.0
        return leakage_bits_per_observation(hist_fixed, hist_random)

    # ------------------------------------------------------------------
    # detector hooks (overridden by repro.analysis.mi.MIAnalyzer)
    # ------------------------------------------------------------------

    def _definite_fields(self) -> Dict[str, float]:
        """Statistical leak fields for a definite (no-test) finding."""
        return {"p_value": 0.0, "statistic": 1.0,
                "bits": 1.0 if self.config.quantify else 0.0}

    def _flagged_fields(self, result: TestResult, hist_fixed: Dict,
                        hist_random: Dict) -> Dict[str, float]:
        """Statistical leak fields for a feature flagged by *result*."""
        return {"p_value": result.p_value, "statistic": result.statistic,
                "bits": self._bits(hist_fixed, hist_random)}

    def _batch_test(self, requests: List[_Request]) -> list:
        """One vectorized pass over all deferred requests."""
        return ks_test_batch(requests, confidence=self.config.confidence,
                             sample_size_cap=self.config.sample_size_cap)

    # ------------------------------------------------------------------
    # test dispatch
    # ------------------------------------------------------------------

    def _plain_test(self, x: List[float], y: List[float]) -> TestResult:
        if self.config.test == "welch":
            return welch_t_test(x, y, confidence=self.config.confidence)
        return ks_test(x, y, confidence=self.config.confidence)

    def _categorical_test(self, hist_x: Dict, hist_y: Dict,
                          order: Optional[Dict] = None
                          ) -> Optional[TestResult]:
        try:
            if self.config.test == "welch":
                return welch_t_test_weighted(
                    _numeric_keys(hist_x), _numeric_keys(hist_y),
                    confidence=self.config.confidence)
            return ks_test_weighted(
                hist_x, hist_y, confidence=self.config.confidence, order=order,
                sample_size_cap=self.config.sample_size_cap)
        except DistributionTestError:
            return None


def _pool(histograms) -> Dict:
    """Sum a list of histograms (for quantification in per-run mode)."""
    pooled: Dict = {}
    for hist in histograms:
        for key, count in hist.items():
            pooled[key] = pooled.get(key, 0) + count
    return pooled


def _numeric_keys(hist: Dict) -> Dict[float, int]:
    """Project arbitrary histogram keys to numbers for Welch's t-test.

    Tuple keys (alloc label, offset) keep only the offset; categorical
    transition keys fall back to a stable enumeration — the information
    loss is the point of the ablation.
    """
    out: Dict[float, int] = {}
    enumeration: Dict[object, int] = {}
    for key, count in hist.items():
        if isinstance(key, tuple) and len(key) == 2 and isinstance(key[1], int):
            value = float(key[1])
        elif isinstance(key, (int, float)):
            value = float(key)
        else:
            value = float(enumeration.setdefault(key, len(enumeration)))
        out[value] = out.get(value, 0) + count
    return out
