"""The duplicates-removing phase (§VI).

Inputs that generate identical program traces form one *input class*:
they share side-channel characteristics, so one representative per class
suffices for leakage analysis.  If all user-provided inputs land in a
single class, the program shows no potential leakage on those inputs and
the pipeline can stop early.

Trace equality is the paper's criterion: equal kernel-invocation sequences
*and* equal A-DCFGs per aligned invocation; we use the trace signature
(content digest) as the grouping key, with a structural-equality check as a
collision guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import ConfigError
from repro.tracing.recorder import ProgramTrace


@dataclass
class InputClass:
    """One equivalence class of inputs with identical traces."""

    signature: str
    representative_index: int
    member_indices: List[int] = field(default_factory=list)
    trace: ProgramTrace = None  # type: ignore[assignment]

    @property
    def size(self) -> int:
        return len(self.member_indices)


@dataclass
class FilterResult:
    """Outcome of the duplicates-removing phase."""

    classes: List[InputClass]
    inputs: Sequence[object]

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def shows_potential_leakage(self) -> bool:
        """More than one class ⇒ some input pair produced distinct traces."""
        return self.num_classes > 1

    def representatives(self) -> List[object]:
        """One input per class, forwarded to the leakage-analysis phase."""
        return [self.inputs[c.representative_index] for c in self.classes]

    def class_of(self, input_index: int) -> InputClass:
        for cls in self.classes:
            if input_index in cls.member_indices:
                return cls
        raise KeyError(f"input index {input_index} was never filtered")


def filter_traces(inputs: Sequence[object],
                  traces: Sequence[ProgramTrace]) -> FilterResult:
    """Group *inputs* by trace equality.

    The first input observed with a given trace becomes the class
    representative (the paper picks one input at random from each class;
    a deterministic pick keeps the pipeline reproducible).
    """
    if len(inputs) != len(traces):
        raise ConfigError(
            f"{len(inputs)} inputs but {len(traces)} traces")
    by_signature: Dict[str, InputClass] = {}
    order: List[str] = []
    for index, trace in enumerate(traces):
        signature = trace.signature()
        found = by_signature.get(signature)
        if found is None:
            by_signature[signature] = InputClass(
                signature=signature, representative_index=index,
                member_indices=[index], trace=trace)
            order.append(signature)
        else:
            # The SHA-256 signature already digests the full trace content,
            # so a matching digest is accepted after a cheap kernel-sequence
            # cross-check — grouping costs O(n) digests instead of one
            # O(trace-size) structural comparison per duplicate.  Only a
            # genuine collision (same digest, different sequence) falls back
            # to the full __eq__ arbiter.
            if (found.trace.kernel_sequence == trace.kernel_sequence
                    or found.trace == trace):
                found.member_indices.append(index)
            else:
                # A digest collision would silently merge distinct traces;
                # fall back to treating the input as its own class.
                collision_sig = f"{signature}:collision:{index}"
                by_signature[collision_sig] = InputClass(
                    signature=collision_sig, representative_index=index,
                    member_indices=[index], trace=trace)
                order.append(collision_sig)
    return FilterResult(classes=[by_signature[s] for s in order],
                        inputs=inputs)
