"""Per-node control-flow transition matrices (§VII-C, eqs. 5–8).

For a node *N* executed *n* times, each execution contributes a 2-tuple
``(src, dst)`` — the block it came from and the block it left to (warp entry
and exit count as the special :data:`~repro.adcfg.graph.START_LABEL` /
:data:`~repro.adcfg.graph.END_LABEL` blocks).  With

* ``I = (x_1 … x_k)`` the per-source entry counts (eq. 5),
* ``O = (y_1 … y_p)`` the per-destination exit counts (eq. 6),

there is a transition matrix ``A`` with ``I · A = O`` (eq. 7).  ``A`` is not
unique, but counting each observed ``(src, dst)`` pair — available in the
A-DCFG because each edge stores its previous-edge histogram — constructs the
paper's feasible solution.  The flattened entries (eq. 8) are the node's
control-flow feature histogram used in the leakage test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.adcfg.graph import ADCFG


@dataclass(frozen=True)
class TransitionMatrix:
    """One node's control-flow transition structure."""

    label: str
    sources: Tuple[str, ...]            # row labels (k entries)
    destinations: Tuple[str, ...]       # column labels (p entries)
    counts: np.ndarray                  # k×p observed (src, dst) pair counts

    @property
    def i_vector(self) -> np.ndarray:
        """Entry counts per source (eq. 5): row sums of the counts."""
        return self.counts.sum(axis=1)

    @property
    def o_vector(self) -> np.ndarray:
        """Exit counts per destination (eq. 6): column sums of the counts."""
        return self.counts.sum(axis=0)

    @property
    def probabilities(self) -> np.ndarray:
        """Row-stochastic ``A`` satisfying ``I · A = O`` (eq. 7).

        Rows with zero entries stay zero (the node was never entered from
        that source in this evidence).
        """
        row_sums = self.counts.sum(axis=1, keepdims=True).astype(float)
        with np.errstate(invalid="ignore", divide="ignore"):
            probs = np.where(row_sums > 0, self.counts / row_sums, 0.0)
        return probs

    def histogram(self) -> Dict[Tuple[str, str], int]:
        """Eq. 8: the flattened matrix as ``(src, dst) -> count`` pairs.

        This is the weighted histogram the distribution test consumes; the
        categorical x-axis order is the lexicographic (src, dst) order.
        """
        out: Dict[Tuple[str, str], int] = {}
        for i, src in enumerate(self.sources):
            for j, dst in enumerate(self.destinations):
                count = int(self.counts[i, j])
                if count:
                    out[(src, dst)] = count
        return out

    def verify_balance(self) -> bool:
        """Check ``I · A = O`` for the probability solution (test helper)."""
        lhs = self.i_vector.astype(float) @ self.probabilities
        return bool(np.allclose(lhs, self.o_vector.astype(float)))


def transition_matrix(graph: ADCFG, label: str) -> TransitionMatrix:
    """Build node *label*'s transition matrix from the A-DCFG.

    The (src, dst) pair counts come from the previous-edge histograms: edge
    ``N -> M`` knows, for each predecessor ``K``, how many of its traversals
    followed edge ``K -> N``.
    """
    if label not in graph.nodes:
        raise KeyError(f"no node {label!r} in A-DCFG {graph.kernel_identity!r}")
    pair_counts: Dict[Tuple[str, str], int] = {}
    for edge in graph.out_edges(label):
        for prev_src, count in edge.prev_counts.items():
            key = (prev_src, edge.dst)
            pair_counts[key] = pair_counts.get(key, 0) + count

    sources = tuple(sorted({src for src, _dst in pair_counts}))
    destinations = tuple(sorted({dst for _src, dst in pair_counts}))
    counts = np.zeros((len(sources), len(destinations)), dtype=np.int64)
    src_index = {s: i for i, s in enumerate(sources)}
    dst_index = {d: j for j, d in enumerate(destinations)}
    for (src, dst), count in pair_counts.items():
        counts[src_index[src], dst_index[dst]] = count
    return TransitionMatrix(label=label, sources=sources,
                            destinations=destinations, counts=counts)


def all_transition_matrices(graph: ADCFG) -> List[TransitionMatrix]:
    """Transition matrices for every executed node of the graph."""
    return [transition_matrix(graph, label) for label in sorted(graph.nodes)]
