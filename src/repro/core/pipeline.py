"""The Owl pipeline: trace recording → duplicates removing → leakage analysis.

:class:`Owl` wires the full §IV-C workflow around a *program under test*
(any callable ``program(rt, value)`` driving a
:class:`~repro.host.runtime.CudaRuntime`):

1. **trace recording** — each user-provided input is executed once under
   full host+device instrumentation;
2. **duplicates removing** — inputs with identical traces are grouped; a
   single class means no potential leakage and the pipeline stops early;
3. **leakage analysis** — the program is re-executed ``fixed_runs`` times
   with a fixed representative input and ``random_runs`` times with fresh
   random inputs; the two evidence sets are compared feature-by-feature
   with the KS test to locate kernel / control-flow / data-flow leaks while
   cancelling input-independent nondeterminism.

The pipeline also collects the cost metrics reported in Table IV (per-trace
size and time, evidence and test times, peak RAM).

Passing ``store=`` to :meth:`Owl.detect` attaches a persistent
:class:`~repro.store.store.TraceStore`: phase-1 traces are cached per
(program, device config, input), phase-3 evidence is checkpointed every
``OwlConfig.store_checkpoint_every`` runs (an interrupted campaign resumes
from the last checkpoint instead of restarting), completed evidence and
reports are reused outright, and a warm re-run is bit-identical to the
cold run that populated the store (see :mod:`repro.store.campaign`).
"""

from __future__ import annotations

import time
import tracemalloc
import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro import profiling
from repro.analysis import analysis_modes, cross_validate, make_analyzer, \
    run_analyzers
from repro.core import adaptive as sequential
from repro.core.adaptive import AdaptiveSummary
from repro.core.evidence import Evidence
from repro.core.filtering import FilterResult, filter_traces
from repro.core.kstest import DEFAULT_CONFIDENCE
from repro.core.leakage import LeakageConfig
from repro.core.parallel import ChunkStats, TraceRecordingPool, resolve_workers
from repro.core.report import LeakageReport
from repro.errors import CampaignError, ConfigError
from repro.gpusim.device import DeviceConfig
from repro.resilience.events import DegradationEvent, collecting_degradations
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.tracing.recorder import Program, ProgramTrace, TraceRecorder

#: Produces a fresh random secret input from a seeded generator.
RandomInputFn = Callable[[np.random.Generator], object]


@dataclass(frozen=True)
class OwlConfig:
    """Pipeline configuration (§VIII-A defaults: 100 runs, α = 0.95)."""

    fixed_runs: int = 100
    random_runs: int = 100
    confidence: float = DEFAULT_CONFIDENCE
    sample_size_cap: Optional[int] = None
    test: str = "ks"
    #: which leakage detector decides findings: "ks" (the paper's
    #: differential KS test), "mi" (MicroWalk-style mutual information,
    #: see repro.analysis.mi), or "both" (one shared evidence pass feeding
    #: both detectors plus a KS-vs-MI cross-validation section)
    analyzer: str = "ks"
    #: entropy bias correction for the MI detector: "miller_madow"
    #: (default), "jackknife", "shrinkage", or "none"
    mi_bias_correction: str = "miller_madow"
    #: minimum bias-corrected MI (bits) the MI detector requires on top of
    #: G-test significance before flagging a feature; 0 disables the floor
    mi_min_bits: float = 0.0
    #: attacker spatial resolution in bytes (1 = noise-free byte-level
    #: attacker per the paper's threat model; 64 models a cache-line probe)
    offset_granularity: int = 1
    #: estimate each leak's strength in bits per observation
    quantify: bool = False
    #: feature sampling: "pooled" (the paper's histograms) or "per_run"
    #: (strict mode; retains per-run graphs in the evidence)
    sampling: str = "pooled"
    analyze_all_representatives: bool = False
    dedup_by_location: bool = True
    measure_memory: bool = False
    #: run phase 3 even when filtering finds a single input class (useful
    #: when the user inputs may under-cover the input space, and for
    #: benchmarking the full protocol on leak-free programs)
    always_analyze: bool = False
    seed: int = 2024
    #: trace-recording worker processes: a positive int or "auto" (one per
    #: core).  Run inputs are drawn in the parent and dispatched as
    #: contiguous chunks, so any worker count produces bit-identical
    #: evidence and reports (see repro.core.parallel).
    workers: Union[int, str] = 1
    #: evaluate all KS features in one vectorized NumPy pass instead of
    #: per-feature scalar calls (identical verdicts; the scalar path stays
    #: available as the reference implementation)
    vectorized: bool = True
    #: record traces through the columnar fast path: per-warp batched
    #: memory events, one vectorized address normalisation per instruction,
    #: and bulk A-DCFG folding.  Produces byte-identical traces to the
    #: per-event object path (``columnar=False``), which stays as the
    #: reference implementation.
    columnar: bool = True
    #: execute every warp of a kernel launch in one NumPy pass over a
    #: ``(num_warps, 32)`` lane grid (the warp-cohort engine), replaying
    #: byte-identical per-warp event streams at retirement.
    #: ``cohort=False`` keeps the per-warp execution loop as the
    #: reference.  Excluded from store fingerprints, like ``columnar``.
    cohort: bool = True
    #: replica-cohort batching for the phase-3 repetition loops: runs with
    #: equal inputs on a deterministic device are deduplicated into
    #: ``(trace, count)`` groups, and the remaining distinct runs execute
    #: their kernel launches as extra rows of the warp-cohort lane grid —
    #: one NumPy pass per group of compatible launches.  ``True`` batches
    #: a whole side's runs together, an int ``n >= 2`` caps the batch
    #: size, and ``False`` keeps the per-run recording loop as the
    #: reference.  Reports are byte-identical either way; excluded from
    #: store fingerprints, like ``cohort``.
    replica_batch: Union[bool, int] = True
    #: additionally collapse consecutive equal-input runs into a single
    #: recording (O(1) work for the whole fixed side).  Only sound when
    #: the program is a pure function of ``(rt, value)``: a program that
    #: draws its own per-run randomness (input-independent nondeterminism,
    #: which the kernel-leakage test is designed to cancel) yields
    #: distinct traces for equal inputs, so this stays opt-in.  Excluded
    #: from store fingerprints.
    replica_dedup: bool = False
    #: with a store attached, persist a phase-3 evidence checkpoint after
    #: every this-many recorded runs per side; an interrupted campaign
    #: resumes from the last checkpoint.  Purely an I/O cadence knob —
    #: excluded from store fingerprints, like ``workers``.
    store_checkpoint_every: int = 25
    #: how worker faults are survived (None = the RetryPolicy defaults);
    #: accepts a RetryPolicy or its dict form from a campaign manifest.
    #: Purely operational — excluded from store fingerprints.
    retry: Optional[RetryPolicy] = None
    #: deterministic fault injection for resilience testing (see
    #: repro.resilience.faults); accepts a FaultPlan, a spec string such as
    #: ``"worker_crash:chunk=1"``, or the manifest dict form.  Excluded
    #: from store fingerprints — an injected run is bit-identical.
    fault_plan: Optional[FaultPlan] = None
    #: runaway-kernel guard for the cohort engine: maximum basic-block
    #: steps one cohort attempt may record before the launch degrades to
    #: the per-warp reference engine (None = unbounded)
    cohort_step_budget: Optional[int] = None
    #: group-sequential adaptive replica scheduling (repro.core.adaptive):
    #: record replicas in growing rounds and stop a campaign early once
    #: every per-location test is confidently flagged or confidently
    #: clean under an O'Brien–Fleming-style alpha-spending rule.
    #: Near-threshold locations force the full budget, so the flagged
    #: leak set matches the full-budget run's; the replica counts (and
    #: hence report byte content) legitimately differ.  Requires the
    #: batched deferred tests (``vectorized=True`` and ``test="ks"``).
    #: Fingerprints as analysis scope: adaptive and classic campaigns
    #: share traces and evidence but cache reports separately.
    adaptive: bool = False
    #: look schedule: None (16 → 32 → 64 → … → budget), an int count of
    #: geometric looks, or an explicit sequence of replica boundaries on
    #: the larger evidence side (the budget is always the final look)
    adaptive_rounds: Union[int, Sequence[int], None] = None
    #: alpha-spending exponent rho in ``z / t**rho``: 0.5 is the classic
    #: O'Brien–Fleming boundary; larger spends even less alpha early
    adaptive_alpha_spend: float = 0.5

    def __post_init__(self) -> None:
        """Reject invalid knobs at construction with one-line messages."""
        if self.test not in ("ks", "welch"):
            raise ConfigError(
                f"unknown distribution test {self.test!r}; valid choices: "
                f"'ks', 'welch'")
        if self.sampling not in ("pooled", "per_run"):
            raise ConfigError(
                f"unknown sampling mode {self.sampling!r}; valid choices: "
                f"'pooled', 'per_run'")
        if self.analyzer not in ("ks", "mi", "both"):
            raise ConfigError(
                f"unknown analyzer {self.analyzer!r}; valid choices: "
                f"'ks', 'mi', 'both'")
        if self.mi_bias_correction not in ("none", "miller_madow",
                                           "jackknife", "shrinkage"):
            raise ConfigError(
                f"unknown MI bias correction {self.mi_bias_correction!r}; "
                f"valid choices: 'none', 'miller_madow', 'jackknife', "
                f"'shrinkage'")
        if not isinstance(self.mi_min_bits, (int, float)) \
                or isinstance(self.mi_min_bits, bool) or self.mi_min_bits < 0:
            raise ConfigError(
                f"mi_min_bits must be a non-negative number, got "
                f"{self.mi_min_bits!r}")
        for name in ("fixed_runs", "random_runs", "offset_granularity",
                     "store_checkpoint_every"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ConfigError(
                    f"{name} must be a positive int, got {value!r}")
        if not 0.0 < self.confidence < 1.0:
            raise ConfigError(
                f"confidence must be strictly between 0 and 1, got "
                f"{self.confidence!r}")
        if self.sample_size_cap is not None and self.sample_size_cap < 1:
            raise ConfigError(
                f"sample_size_cap must be a positive int or None, got "
                f"{self.sample_size_cap!r}")
        if not isinstance(self.replica_batch, (bool, int)) or (
                not isinstance(self.replica_batch, bool)
                and self.replica_batch < 1):
            raise ConfigError(
                f"replica_batch must be a bool or a positive int, got "
                f"{self.replica_batch!r}")
        if not isinstance(self.replica_dedup, bool):
            raise ConfigError(
                f"replica_dedup must be a bool, got {self.replica_dedup!r}")
        if (self.cohort_step_budget is not None
                and self.cohort_step_budget < 1):
            raise ConfigError(
                f"cohort_step_budget must be a positive int or None, got "
                f"{self.cohort_step_budget!r}")
        if not isinstance(self.adaptive, bool):
            raise ConfigError(
                f"adaptive must be a bool, got {self.adaptive!r}")
        object.__setattr__(
            self, "adaptive_rounds",
            sequential.validate_adaptive_rounds(self.adaptive_rounds))
        if not isinstance(self.adaptive_alpha_spend, (int, float)) \
                or isinstance(self.adaptive_alpha_spend, bool) \
                or not 0.0 < self.adaptive_alpha_spend <= 4.0:
            raise ConfigError(
                f"adaptive_alpha_spend must be a number in (0, 4], got "
                f"{self.adaptive_alpha_spend!r}")
        if self.adaptive and (not self.vectorized or self.test != "ks"):
            raise ConfigError(
                "adaptive early stopping needs the per-location p-values "
                "of the batched deferred tests; it requires "
                "vectorized=True and test='ks'")
        resolve_workers(self.workers)  # raises ConfigError on bad specs
        # campaign manifests round-trip these nested configs through
        # dataclasses.asdict; coerce the dict (or spec-string) forms back
        if self.retry is not None and not isinstance(self.retry,
                                                     RetryPolicy):
            if not isinstance(self.retry, dict):
                raise ConfigError(
                    f"retry must be a RetryPolicy or its dict form, got "
                    f"{type(self.retry).__name__!r}")
            object.__setattr__(self, "retry", RetryPolicy(**self.retry))
        if self.fault_plan is not None:
            object.__setattr__(self, "fault_plan",
                               FaultPlan.coerce(self.fault_plan))

    def leakage_config(self) -> LeakageConfig:
        return LeakageConfig(confidence=self.confidence,
                             sample_size_cap=self.sample_size_cap,
                             test=self.test,
                             offset_granularity=self.offset_granularity,
                             quantify=self.quantify,
                             sampling=self.sampling,
                             vectorized=self.vectorized,
                             mi_bias_correction=self.mi_bias_correction,
                             mi_min_bits=self.mi_min_bits)


@dataclass
class PhaseStats:
    """Cost accounting for one detection run (Table IV columns).

    Two timing views of trace recording are kept because they diverge
    under the worker pool:

    * ``trace_seconds_total`` sums each run's individual recording cost
      (CPU time of the ``record`` call, wherever it executed) — with
      ``workers > 1`` these overlap and the sum legitimately *exceeds*
      wall clock; ``avg_trace_seconds`` therefore still means per-trace
      cost, matching the paper's per-trace column;
    * ``trace_wall_seconds`` is the wall clock the pipeline actually spent
      in the recording phases (including pool overhead and, in phase 3,
      the interleaved streaming evidence fold) — this is what speeds up
      with workers and is bounded by ``total_seconds``.
    """

    trace_count: int = 0
    trace_bytes_total: int = 0
    trace_seconds_total: float = 0.0
    trace_wall_seconds: float = 0.0
    evidence_seconds: float = 0.0
    test_seconds: float = 0.0
    total_seconds: float = 0.0
    peak_ram_bytes: int = 0
    workers: int = 1
    #: store reuse accounting (0 without a store): phase-1 traces loaded
    #: from cache instead of recorded, and phase-3 runs skipped because
    #: their evidence (full or checkpointed) was already persisted
    cached_traces: int = 0
    cached_runs: int = 0
    #: the final report itself came straight from the store
    report_cache_hit: bool = False
    #: replica-batching counters (all 0 with ``replica_batch=False``):
    #: runs served by deduplicating equal inputs, fused cohort groups
    #: executed, launches retired from fused groups, and launches that
    #: fell back to the per-run engine
    replica_dedup_runs: int = 0
    replica_fused_groups: int = 0
    replica_fused_launches: int = 0
    replica_fallback_launches: int = 0
    #: structured record of every fault this run survived (worker retries,
    #: pool → serial, cohort → warp, columnar → object, quarantined blobs);
    #: empty on a fault-free run — degraded runs stay bit-identical, this
    #: is the only externally visible difference
    degradations: List[DegradationEvent] = field(default_factory=list)

    @property
    def avg_trace_bytes(self) -> float:
        return self.trace_bytes_total / self.trace_count if self.trace_count else 0.0

    @property
    def avg_trace_seconds(self) -> float:
        return (self.trace_seconds_total / self.trace_count
                if self.trace_count else 0.0)

    @property
    def recording_parallelism(self) -> float:
        """Achieved overlap: summed per-trace cost over recording wall."""
        return (self.trace_seconds_total / self.trace_wall_seconds
                if self.trace_wall_seconds else 0.0)

    def absorb_chunk(self, chunk: ChunkStats, wall_seconds: float) -> None:
        """Fold one recorded batch's accounting into this run's totals."""
        self.trace_count += chunk.trace_count
        self.trace_bytes_total += chunk.trace_bytes_total
        self.trace_seconds_total += chunk.trace_seconds_total
        self.evidence_seconds += chunk.evidence_seconds
        self.trace_wall_seconds += wall_seconds
        self.replica_dedup_runs += chunk.replica_dedup_runs
        self.replica_fused_groups += chunk.replica_fused_groups
        self.replica_fused_launches += chunk.replica_fused_launches
        self.replica_fallback_launches += chunk.replica_fallback_launches
        self.degradations.extend(chunk.degradations)


@dataclass
class OwlResult:
    """Everything one :meth:`Owl.detect` call produced."""

    program_name: str
    filter_result: FilterResult
    report: LeakageReport
    per_representative: List[LeakageReport] = field(default_factory=list)
    stats: PhaseStats = field(default_factory=PhaseStats)
    #: the adaptive scheduler's stopping story — per-side budgets vs
    #: replicas actually recorded, and every interim look's decision
    #: (None on classic runs and on runs that never reached phase 3)
    adaptive: Optional[AdaptiveSummary] = None

    @property
    def leak_free_by_filtering(self) -> bool:
        """True when phase 2 already proved all inputs trace-identical."""
        return not self.filter_result.shows_potential_leakage

    @property
    def degradations(self) -> List[DegradationEvent]:
        """Every fault this run survived (see ``PhaseStats.degradations``)."""
        return self.stats.degradations

    @property
    def degraded(self) -> bool:
        """True when any fallback fired during this run."""
        return bool(self.stats.degradations)


@dataclass
class _EvidenceSide:
    """Mutable per-side state of the adaptive round loop.

    One per representative's fixed side plus one for the shared random
    side; ``done`` is the replica prefix already folded into
    ``evidence`` and ``boundaries[r]`` where the side must stand for
    round ``r``'s look.
    """

    side: str
    key: Optional[str]
    values: List[object]
    boundaries: Sequence[int]
    evidence: Optional[Evidence] = None
    done: int = 0

    @property
    def total(self) -> int:
        return len(self.values)


class Owl:
    """Differential side-channel leakage detector for (simulated) CUDA apps."""

    def __init__(self, program: Program, name: str = "program",
                 device_config: Optional[DeviceConfig] = None,
                 config: Optional[OwlConfig] = None) -> None:
        self.program = program
        self.name = name
        self.config = config or OwlConfig()
        self.device_config = device_config or DeviceConfig()
        if self.config.cohort_step_budget is not None:
            from dataclasses import replace
            self.device_config = replace(
                self.device_config,
                cohort_step_budget=self.config.cohort_step_budget)
        self.recorder = TraceRecorder(device_config=self.device_config,
                                      columnar=self.config.columnar,
                                      cohort=self.config.cohort)
        self.pool = TraceRecordingPool(program,
                                       device_config=self.device_config,
                                       workers=self.config.workers,
                                       columnar=self.config.columnar,
                                       cohort=self.config.cohort,
                                       replica_batch=self.config.replica_batch,
                                       replica_dedup=self.config.replica_dedup,
                                       retry=self.config.retry,
                                       fault_plan=self.config.fault_plan,
                                       seed=self.config.seed)
        # one detector per mode ("both" expands to ks + mi), all sharing
        # one LeakageConfig so the evidence fold is detector-independent
        self.analyzers = tuple(
            make_analyzer(mode, self.config.leakage_config())
            for mode in analysis_modes(self.config.analyzer))
        self.analyzer = self.analyzers[0]

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------

    def record_traces(self, inputs: Sequence[object],
                      stats: Optional[PhaseStats] = None,
                      campaign=None) -> List[ProgramTrace]:
        """Phase 1: one instrumented execution per input.

        With a campaign attached, inputs whose traces are already in the
        store are loaded instead of re-recorded (cache hits land in
        ``stats.cached_traces``); only the misses are executed, and their
        traces are persisted for the next run.
        """
        if campaign is None:
            started = time.perf_counter()
            traces, chunk = self.pool.record_traces(inputs)
            if stats is not None:
                stats.absorb_chunk(chunk, time.perf_counter() - started)
            return traces
        fps = [campaign.input_fingerprint(value) for value in inputs]
        traces: List[Optional[ProgramTrace]] = [
            campaign.load_trace(fp) for fp in fps]
        missing = [index for index, trace in enumerate(traces)
                   if trace is None]
        if missing:
            started = time.perf_counter()
            recorded, chunk = self.pool.record_traces(
                [inputs[index] for index in missing])
            wall = time.perf_counter() - started
            if stats is not None:
                stats.absorb_chunk(chunk, wall)
            # one batched manifest append for the whole phase, not one
            # full-manifest rewrite per recorded trace
            with campaign.store.batch():
                for index, trace in zip(missing, recorded):
                    campaign.save_trace(fps[index], trace)
                    traces[index] = trace
        if stats is not None:
            stats.cached_traces += len(inputs) - len(missing)
        return traces  # type: ignore[return-value]

    def filter_inputs(self, inputs: Sequence[object],
                      traces: Sequence[ProgramTrace]) -> FilterResult:
        """Phase 2: group inputs into trace-equality classes."""
        return filter_traces(inputs, traces)

    def collect_evidence(self, fixed_input: object,
                         random_input: RandomInputFn,
                         stats: Optional[PhaseStats] = None,
                         campaign=None):
        """Phase 3a: record and fold the fixed/random evidence pair.

        Run inputs are all drawn here, in the parent, from one seeded
        generator — the same draw order regardless of worker count — and
        each side's runs stream straight into its evidence (each trace is
        dropped once folded, so peak RAM holds one trace per worker plus
        the merged graphs rather than 2N full traces).

        With a campaign attached, a side whose completed evidence is in
        the store is loaded outright; otherwise recording starts from the
        side's last persisted checkpoint (if any) and writes a new
        checkpoint every ``store_checkpoint_every`` runs.  The evidence
        returned is always the store's canonical round-tripped form, which
        is what makes warm re-runs bit-identical to cold ones.
        """
        rng = np.random.default_rng(self.config.seed)
        fixed_values = [fixed_input] * self.config.fixed_runs
        random_values = [random_input(rng)
                         for _ in range(self.config.random_runs)]
        keep_per_run = self.config.sampling == "per_run"
        rep_fp = (campaign.input_fingerprint(fixed_input)
                  if campaign is not None else None)
        evidences = []
        for side, values in (("fixed", fixed_values),
                             ("random", random_values)):
            if campaign is None:
                started = time.perf_counter()
                evidence, chunk = self.pool.record_evidence(
                    values, keep_per_run=keep_per_run)
                if stats is not None:
                    stats.absorb_chunk(chunk, time.perf_counter() - started)
            else:
                evidence = self._collect_side_checkpointed(
                    campaign, side, rep_fp, values, keep_per_run, stats)
            evidences.append(evidence)
        return evidences[0], evidences[1]

    def _collect_side_checkpointed(self, campaign, side: str,
                                   rep_fp: Optional[str],
                                   values: Sequence[object],
                                   keep_per_run: bool,
                                   stats: Optional[PhaseStats]):
        """Record one evidence side through the store's cache/checkpoints."""
        key = campaign.evidence_key(side, rep_fp)
        cached = campaign.load_evidence(key)
        if cached is not None:
            if cached.num_runs != len(values):
                raise CampaignError(
                    f"store evidence {key!r} holds {cached.num_runs} runs "
                    f"but the configuration asks for {len(values)} — "
                    f"fingerprint collision or tampered manifest")
            if stats is not None:
                stats.cached_runs += cached.num_runs
            return cached
        evidence = None
        done = 0
        checkpoint = campaign.load_checkpoint(key)
        if checkpoint is not None:
            evidence, done = checkpoint
            if done > len(values):
                evidence, done = None, 0  # stale checkpoint: restart side
            elif stats is not None:
                stats.cached_runs += done
        chunk_size = max(1, self.config.store_checkpoint_every)
        while done < len(values):
            batch = list(values[done:done + chunk_size])
            started = time.perf_counter()
            partial, chunk = self.pool.record_evidence(
                batch, keep_per_run=keep_per_run)
            if stats is not None:
                stats.absorb_chunk(chunk, time.perf_counter() - started)
            evidence = partial if evidence is None else evidence.merge(partial)
            done += len(batch)
            if done < len(values):
                campaign.save_checkpoint(key, evidence, done, len(values),
                                         side)
        if evidence is None:
            evidence = Evidence(keep_per_run=keep_per_run)
        return campaign.save_evidence(key, evidence, side)

    # ------------------------------------------------------------------
    # phase 3, adaptive (group-sequential early stopping)
    # ------------------------------------------------------------------

    def _adaptive_phase3(self, representatives: Sequence[object],
                         random_input: RandomInputFn,
                         stats: Optional[PhaseStats], campaign):
        """Phase 3 under the group-sequential replica scheduler.

        All representatives' fixed sides and the shared random side
        advance in lockstep to each round boundary of the schedule
        (:func:`repro.core.adaptive.round_schedule`); after each round
        every representative is analysed over its evidence *prefix* and
        the campaign stops once every submitted test is decided for
        every representative and every detector — one joint loop, so the
        shared random evidence is never left at inconsistent depths.

        Returns ``(rep_reports, summary)`` with ``rep_reports[i]`` the
        per-analyzer reports of representative ``i`` at the stopping
        round.  With a campaign attached, early-stopped sides persist as
        round-boundary *checkpoints* (the PR 3 resume path) — never as
        completed evidence, whose key promises the full budget — and a
        resumed run fast-forwards over boundaries the evidence already
        passed, recomputing the one live decision bit-identically.
        """
        config = self.config
        schedule = sequential.round_schedule(
            config.fixed_runs, config.random_runs, config.adaptive_rounds)
        summary = AdaptiveSummary(fixed_budget=config.fixed_runs,
                                  random_budget=config.random_runs)
        keep_per_run = config.sampling == "per_run"
        alpha = 1.0 - config.confidence

        if campaign is not None \
                and self._adaptive_cached_sides(representatives, campaign):
            # the store already holds a completed side (recorded by a
            # classic run, or this campaign's own final round): it
            # carries strictly more information than any interim look,
            # so degrade to the classic full-budget path and keep the
            # store's evidence reuse
            rep_reports = []
            for rep in representatives:
                fixed_evidence, random_evidence = self.collect_evidence(
                    rep, random_input, stats=stats, campaign=campaign)
                test_started = time.perf_counter()
                rep_reports.append(run_analyzers(
                    self.analyzers, fixed_evidence, random_evidence,
                    program_name=self.name))
                if stats is not None:
                    stats.test_seconds += time.perf_counter() - test_started
            summary.outcome = sequential.OUTCOME_CACHED
            summary.fixed_recorded = config.fixed_runs
            summary.random_recorded = config.random_runs
            return rep_reports, summary

        rng = np.random.default_rng(config.seed)
        random_values = [random_input(rng)
                         for _ in range(config.random_runs)]
        sides: List[_EvidenceSide] = []
        for rep in representatives:
            key = None
            if campaign is not None:
                key = campaign.evidence_key(
                    "fixed", campaign.input_fingerprint(rep))
            sides.append(_EvidenceSide(
                side="fixed", key=key,
                values=[rep] * config.fixed_runs,
                boundaries=schedule.fixed))
        random_side = _EvidenceSide(
            side="random",
            key=(campaign.evidence_key("random")
                 if campaign is not None else None),
            values=random_values, boundaries=schedule.random)
        sides.append(random_side)
        if campaign is not None:
            for side in sides:
                checkpoint = campaign.load_checkpoint(side.key)
                if checkpoint is not None:
                    evidence, done = checkpoint
                    if done <= side.total:
                        side.evidence, side.done = evidence, done
                        if stats is not None:
                            stats.cached_runs += done

        rep_reports = []
        for round_index in range(schedule.num_rounds):
            final = round_index == schedule.num_rounds - 1
            if any(side.done > side.boundaries[round_index]
                   for side in sides):
                # evidence past this boundary proves a prior run already
                # decided "continue" here; skip straight to the live round
                continue
            for side in sides:
                self._adaptive_record_side(
                    side, side.boundaries[round_index], keep_per_run,
                    stats, campaign, final)
            test_started = time.perf_counter()
            rep_reports, decision = sequential.evaluate_round(
                self.analyzers, [side.evidence for side in sides[:-1]],
                random_side.evidence, program_name=self.name, alpha=alpha,
                rho=config.adaptive_alpha_spend, schedule=schedule,
                round_index=round_index)
            decision.analysis_seconds = time.perf_counter() - test_started
            if stats is not None:
                stats.test_seconds += decision.analysis_seconds
            summary.rounds.append(decision)
            if decision.stop:
                break
        summary.fixed_recorded = sides[0].done
        summary.random_recorded = random_side.done
        summary.outcome = (
            sequential.OUTCOME_BUDGET
            if (summary.fixed_recorded == config.fixed_runs
                and summary.random_recorded == config.random_runs)
            else sequential.OUTCOME_EARLY_STOP)
        return rep_reports, summary

    def _adaptive_cached_sides(self, representatives, campaign) -> bool:
        """True when the store holds any *completed* evidence side."""
        keys = [campaign.evidence_key(
            "fixed", campaign.input_fingerprint(rep))
            for rep in representatives]
        keys.append(campaign.evidence_key("random"))
        return any(campaign.store.get(key) is not None for key in keys)

    def _adaptive_record_side(self, side: "_EvidenceSide", target: int,
                              keep_per_run: bool,
                              stats: Optional[PhaseStats], campaign,
                              final: bool) -> None:
        """Advance one evidence side to a round boundary, resumably.

        Records in ``store_checkpoint_every`` batches with a checkpoint
        after each (crash anywhere resumes mid-round), and leaves
        ``side.evidence`` in the store's canonical round-tripped form at
        the boundary — the exact bytes a resumed run loads back — so
        cold and resumed looks analyse identical evidence.  Only the
        final round may complete a side (``save_evidence``); an early
        stop leaves the side checkpointed at its stopping boundary.
        """
        chunk_size = max(1, self.config.store_checkpoint_every)
        advanced = False
        while side.done < target:
            batch = list(side.values[side.done:
                                     min(side.done + chunk_size, target)])
            started = time.perf_counter()
            partial, chunk = self.pool.record_evidence(
                batch, keep_per_run=keep_per_run)
            if stats is not None:
                stats.absorb_chunk(chunk, time.perf_counter() - started)
            side.evidence = (partial if side.evidence is None
                             else side.evidence.merge(partial))
            side.done += len(batch)
            advanced = True
            if campaign is not None \
                    and not (final and side.done == side.total):
                campaign.save_checkpoint(side.key, side.evidence,
                                         side.done, side.total, side.side)
        if side.evidence is None:
            side.evidence = Evidence(keep_per_run=keep_per_run)
            advanced = True
        if campaign is None:
            return
        if final and side.done == side.total:
            side.evidence = campaign.save_evidence(side.key, side.evidence,
                                                   side.side)
        elif advanced:
            from repro.store.serialize import (deserialize_evidence,
                                               serialize_evidence)
            side.evidence = deserialize_evidence(
                serialize_evidence(side.evidence))

    # ------------------------------------------------------------------
    # full pipeline
    # ------------------------------------------------------------------

    def detect(self, inputs: Sequence[object], *args,
               random_input: Optional[RandomInputFn] = None,
               store=None, reuse_report: bool = True) -> OwlResult:
        """Run all three phases and return the located leaks.

        Everything past ``inputs`` is keyword-only in the stable API
        (positional calls still work for one deprecation cycle and warn).

        ``store`` (a :class:`~repro.store.store.TraceStore` or a path to
        create/open one) turns the call into a campaign: phase-1 traces
        are cached per input, phase-3 evidence is checkpointed and reused,
        and — with ``reuse_report=True`` — an already-completed campaign
        returns its stored report outright.  A warm run is bit-identical
        to the cold run that filled the store.  Distinct programs sharing
        one store must use distinct ``name``s: the store cannot see
        through the program callable, so the name *is* the version label.
        """
        if args:
            names = ("random_input", "store", "reuse_report")
            if len(args) > len(names):
                raise TypeError(
                    f"detect() takes at most {len(names)} arguments past "
                    f"'inputs' ({len(args)} given)")
            warnings.warn(
                f"passing {', '.join(names[:len(args)])} to Owl.detect() "
                f"positionally is deprecated; use keyword arguments",
                DeprecationWarning, stacklevel=2)
            shifted = dict(zip(names, args))
            if "random_input" in shifted:
                if random_input is not None:
                    raise TypeError(
                        "detect() got multiple values for 'random_input'")
                random_input = shifted["random_input"]
            if "store" in shifted:
                store = shifted["store"]
            if "reuse_report" in shifted:
                reuse_report = shifted["reuse_report"]
        if random_input is None:
            raise TypeError("detect() missing required argument: "
                            "'random_input'")
        campaign = self._campaign(store)
        stats = PhaseStats(workers=resolve_workers(self.config.workers))
        tracking_memory = False
        if self.config.measure_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            tracking_memory = True
        # one detection-wide collector: the nested per-batch collectors in
        # the recording pool propagate their events here on exit, and
        # store-quarantine events recorded between batches land directly,
        # so the final assignment below sees each survived fault exactly
        # once, in order
        collector = collecting_degradations()
        degradation_log = collector.__enter__()
        started = time.perf_counter()
        try:
            traces = self.record_traces(inputs, stats=stats,
                                        campaign=campaign)
            filter_started = time.perf_counter()
            filter_result = self.filter_inputs(inputs, traces)
            prof = profiling.profiler()
            if prof is not None:
                prof.add("analysis_filter",
                         time.perf_counter() - filter_started)

            inputs_fp = None
            if campaign is not None:
                inputs_fp = campaign.inputs_fingerprint(
                    [campaign.input_fingerprint(value) for value in inputs])
                campaign.mark_started(inputs_fp)
                if reuse_report:
                    cached = campaign.load_report(inputs_fp)
                    if cached is not None:
                        stats.report_cache_hit = True
                        stats.total_seconds = time.perf_counter() - started
                        campaign.mark_complete(inputs_fp)
                        return OwlResult(program_name=self.name,
                                         filter_result=filter_result,
                                         report=cached, stats=stats)

            empty = LeakageReport(program_name=self.name,
                                  confidence=self.config.confidence,
                                  analyzer=self.config.analyzer)
            if (not filter_result.shows_potential_leakage
                    and not self.config.always_analyze):
                stats.total_seconds = time.perf_counter() - started
                if campaign is not None:
                    with campaign.store.batch():
                        campaign.save_report(inputs_fp, empty, stats=stats)
                        campaign.mark_complete(inputs_fp)
                return OwlResult(program_name=self.name,
                                 filter_result=filter_result, report=empty,
                                 stats=stats)

            representatives = filter_result.representatives()
            if not self.config.analyze_all_representatives:
                representatives = representatives[:1]

            per_rep: List[LeakageReport] = []
            per_mode: List[List[LeakageReport]] = [[] for _ in self.analyzers]
            adaptive_summary: Optional[AdaptiveSummary] = None
            if self.config.adaptive:
                rep_reports, adaptive_summary = self._adaptive_phase3(
                    representatives, random_input, stats, campaign)
                for reports in rep_reports:
                    for mode_reports, report in zip(per_mode, reports):
                        mode_reports.append(report)
                    per_rep.append(reports[0] if len(reports) == 1
                                   else cross_validate(*reports))
            else:
                for rep in representatives:
                    fixed_evidence, random_evidence = self.collect_evidence(
                        rep, random_input, stats=stats, campaign=campaign)
                    test_started = time.perf_counter()
                    reports = run_analyzers(self.analyzers, fixed_evidence,
                                            random_evidence,
                                            program_name=self.name)
                    stats.test_seconds += time.perf_counter() - test_started
                    for mode_reports, report in zip(per_mode, reports):
                        mode_reports.append(report)
                    per_rep.append(reports[0] if len(reports) == 1
                                   else cross_validate(*reports))

            # merge (and dedup) per detector mode, exactly as a
            # single-analyzer run would — the KS component of a "both" run
            # stays byte-identical to an analyzer="ks" run by construction.
            # An adaptive run's counts are the replicas it actually
            # analysed, so an early-stopped report says what it tested.
            num_fixed_runs = (adaptive_summary.fixed_recorded
                              if adaptive_summary is not None
                              else self.config.fixed_runs)
            num_random_runs = (adaptive_summary.random_recorded
                               if adaptive_summary is not None
                               else self.config.random_runs)
            merged_by_mode: List[LeakageReport] = []
            for detector, mode_reports in zip(self.analyzers, per_mode):
                merged = LeakageReport(program_name=self.name,
                                       num_fixed_runs=num_fixed_runs,
                                       num_random_runs=num_random_runs,
                                       confidence=self.config.confidence,
                                       analyzer=detector.mode)
                for report in mode_reports:
                    merged.extend(report.leaks)
                if self.config.dedup_by_location:
                    merged = merged.dedup_by_location()
                    merged.num_fixed_runs = num_fixed_runs
                    merged.num_random_runs = num_random_runs
                merged_by_mode.append(merged)
            merged = (merged_by_mode[0] if len(merged_by_mode) == 1
                      else cross_validate(*merged_by_mode))
            stats.total_seconds = time.perf_counter() - started
            if campaign is not None:
                with campaign.store.batch():
                    campaign.save_report(inputs_fp, merged, stats=stats)
                    campaign.mark_complete(inputs_fp)
            return OwlResult(program_name=self.name,
                             filter_result=filter_result, report=merged,
                             per_representative=per_rep, stats=stats,
                             adaptive=adaptive_summary)
        finally:
            collector.__exit__(None, None, None)
            stats.degradations[:] = degradation_log.events
            if tracking_memory:
                _current, peak = tracemalloc.get_traced_memory()
                stats.peak_ram_bytes = peak
                tracemalloc.stop()

    def _campaign(self, store):
        """Normalise ``detect``'s store argument into a Campaign (or None).

        Imported lazily so the store subsystem stays an optional layer on
        top of the core pipeline.
        """
        if store is None:
            return None
        from repro.store.campaign import Campaign
        from repro.store.store import TraceStore
        if not isinstance(store, TraceStore):
            store = TraceStore(store)
        return Campaign(store, self.name, self.config, self.device_config)
