"""Owl's core analysis: alignment, statistics, evidence, and leakage tests.

This package is the paper's primary contribution — everything downstream of
trace recording: the Myers alignment used for evidence merging, the KS-based
distribution tests, the per-node control-flow transition matrices, the
duplicates-removing phase, the three leakage tests, and the :class:`Owl`
pipeline that orchestrates them.
"""

from repro.core.alignment import EditOp, EditStep, align_pairs, edit_distance, myers_diff
from repro.core.evidence import AlignedSlotPair, Evidence, EvidenceSlot, align_evidence
from repro.core.filtering import FilterResult, InputClass, filter_traces
from repro.core.kstest import (
    DEFAULT_CONFIDENCE,
    TestResult,
    ks_p_value,
    ks_statistic,
    ks_statistic_weighted,
    ks_test,
    ks_test_batch,
    ks_test_weighted,
    ks_threshold,
    welch_t_test,
    welch_t_test_weighted,
)
from repro.core.leakage import LeakageAnalyzer, LeakageConfig
from repro.core.parallel import (
    ChunkStats,
    TraceRecordingPool,
    chunk_slices,
    resolve_workers,
)
from repro.core.pipeline import Owl, OwlConfig, OwlResult, PhaseStats
from repro.core.report import Leak, LeakType, LeakageReport
from repro.core.transition import TransitionMatrix, all_transition_matrices, transition_matrix

__all__ = [
    "AlignedSlotPair",
    "ChunkStats",
    "DEFAULT_CONFIDENCE",
    "EditOp",
    "EditStep",
    "Evidence",
    "EvidenceSlot",
    "FilterResult",
    "InputClass",
    "Leak",
    "LeakType",
    "LeakageAnalyzer",
    "LeakageConfig",
    "LeakageReport",
    "Owl",
    "OwlConfig",
    "OwlResult",
    "PhaseStats",
    "TestResult",
    "TraceRecordingPool",
    "TransitionMatrix",
    "align_evidence",
    "align_pairs",
    "all_transition_matrices",
    "chunk_slices",
    "edit_distance",
    "filter_traces",
    "ks_p_value",
    "ks_statistic",
    "ks_statistic_weighted",
    "ks_test",
    "ks_test_batch",
    "ks_test_weighted",
    "ks_threshold",
    "myers_diff",
    "resolve_workers",
    "transition_matrix",
    "welch_t_test",
    "welch_t_test_weighted",
]
