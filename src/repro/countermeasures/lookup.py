"""Constant-observable and obfuscated table-lookup primitives."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpusim.context import WarpContext
from repro.gpusim.memory import DeviceBuffer
from repro.gpusim.warp import lane_vector
from repro.host.runtime import CudaRuntime


def masked_lookup(k: WarpContext, table: DeviceBuffer, index) -> np.ndarray:
    """Read the whole table; keep the wanted entry via predicated selects.

    The traced access pattern is a full sweep of uniform addresses —
    byte-for-byte identical for every index — so no attacker granularity
    can distinguish lookups.  Cost: ``len(table)`` loads per lookup (the
    classic constant-time trade-off).
    """
    index = lane_vector(index, dtype=np.int64)
    accumulator = np.zeros(index.shape, dtype=table.data.dtype)
    for entry in range(table.num_elements):
        value = k.load(table, entry)
        accumulator = k.select(index == entry, value, accumulator)
    return accumulator


def striped_table_layout(values: np.ndarray, stripe_width: int) -> np.ndarray:
    """Prepare a table for :func:`striped_lookup`.

    The scatter-gather scheme keeps entries grouped into stripes of
    ``stripe_width`` entries; :func:`striped_lookup` touches one address in
    *every* stripe per lookup, so only the intra-stripe offset (the low
    ``log2(stripe_width)`` index bits) remains observable.  A stripe maps
    naturally onto a cache line: ``stripe_width * itemsize`` bytes.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("striped layout expects a flat table")
    if values.size % stripe_width:
        raise ValueError(
            f"table size {values.size} is not a multiple of the stripe "
            f"width {stripe_width}")
    return values.copy()


def striped_lookup(k: WarpContext, table: DeviceBuffer, index,
                   stripe_width: int) -> np.ndarray:
    """Scatter-gather lookup: one access per stripe, select in registers.

    Per lookup the warp touches address ``stripe * width + (index % width)``
    in every stripe.  An attacker observing at stripe (cache-line)
    granularity sees a constant all-stripes sweep; a byte-granularity
    attacker still learns ``index mod stripe_width`` — the documented
    residual leakage of the scheme, which Owl's ``offset_granularity``
    knob makes measurable.
    """
    if table.num_elements % stripe_width:
        raise ValueError("table size must be a multiple of the stripe width")
    num_stripes = table.num_elements // stripe_width
    index = lane_vector(index, dtype=np.int64)
    offset = index % stripe_width
    wanted_stripe = index // stripe_width
    accumulator = np.zeros(index.shape, dtype=table.data.dtype)
    for stripe in range(num_stripes):
        value = k.load(table, stripe * stripe_width + offset)
        accumulator = k.select(wanted_stripe == stripe, value, accumulator)
    return accumulator


class RotatedTable:
    """ORAM-flavoured obfuscation: a per-run random rotation of the table.

    Every execution re-uploads the table rotated by a fresh random amount,
    so the *addresses* a lookup touches are uniformly distributed across
    runs regardless of the index.  Trace differencing tools that compare
    single traces flag this as leakage (the §III oblivious-RAM false
    positive); Owl's fixed-input repetition learns the randomness and stays
    silent.  Note the rotation hides *which* entry is accessed but not
    access *counts* — it is an obfuscation, not a proof.
    """

    def __init__(self, rt: CudaRuntime, values: np.ndarray, label: str,
                 rng: Optional[np.random.Generator] = None) -> None:
        values = np.asarray(values)
        rng = rng or np.random.default_rng()
        self.size = int(values.size)
        self.rotation = int(rng.integers(0, self.size))
        rotated = np.roll(values, -self.rotation)
        self.buffer = rt.cudaMalloc(self.size, dtype=values.dtype,
                                    label=label)
        rt.cudaMemcpyHtoD(self.buffer, rotated)

    def lookup(self, k: WarpContext, index) -> np.ndarray:
        """Load entry *index*: address ``(index - rotation) mod size``."""
        index = lane_vector(index, dtype=np.int64)
        return k.load(self.buffer, (index - self.rotation) % self.size)
