"""Side-channel countermeasures (paper §IX) and their verification.

The paper's countermeasure discussion covers hiding secret-dependent
memory access patterns and the GPU scatter-gather AES scheme; its related
work (§III) also notes that oblivious-RAM-style randomisation confuses
*deterministic* detectors into false positives, which Owl's distribution
testing avoids.  This package implements the three classic strategies as
drop-in lookup primitives so applications can be patched and re-audited:

* :func:`masked_lookup` — read **every** table entry and select the wanted
  one in registers: the access pattern is a constant full sweep
  (the bitslice/constant-time classic; heavy but airtight);
* :func:`striped_lookup` — the scatter-gather scheme: the table is
  re-laid-out so one logical entry is spread across all stripes and every
  lookup touches one address per stripe; only the *intra-stripe* offset
  depends on the index, so an attacker with stripe-level (cache-line)
  resolution learns nothing;
* :class:`RotatedTable` — ORAM-flavoured randomised remapping: the host
  re-rotates the table by a fresh random amount each run, making address
  traces nondeterministic but input-independent — a *naive* differ flags
  it; Owl's fixed-input repetition correctly does not.
"""

from repro.countermeasures.lookup import (
    RotatedTable,
    masked_lookup,
    striped_lookup,
    striped_table_layout,
)

__all__ = [
    "RotatedTable",
    "masked_lookup",
    "striped_lookup",
    "striped_table_layout",
]
