"""NVBit-like device tracing: channel, monitor, and hierarchical recorder.

§V-A of the paper traces CUDA execution at three levels:

* **program level** — the ordered sequence of kernel invocations (plus the
  host allocation records), captured by the Pin-like
  :mod:`repro.host.tracer`;
* **kernel level** — each launch executes as a set of warps; the
  :class:`~repro.tracing.monitor.WarpTraceMonitor` keeps per-warp context,
  identified by *(block id, warp id)* because NVBit warp ids are only unique
  within a block;
* **warp level** — each warp's basic-block entries and per-instruction
  memory accesses, aggregated straight into the invocation's A-DCFG.

:class:`~repro.tracing.recorder.TraceRecorder` wires everything together and
produces a :class:`~repro.tracing.recorder.ProgramTrace` per execution.
"""

from repro.tracing.channel import Channel
from repro.tracing.monitor import WarpTraceMonitor
from repro.tracing.recorder import KernelInvocation, ProgramTrace, TraceRecorder

__all__ = [
    "Channel",
    "KernelInvocation",
    "ProgramTrace",
    "TraceRecorder",
    "WarpTraceMonitor",
]
