"""Replica-cohort batching: record many runs of one program in one pass.

Owl's differential design (§VII) re-executes the same program ~100 times
per input class.  After the warp-cohort engine made a *single* execution
cheap, the per-run Python overhead (one device, one runtime, one pass per
run) became the recording bottleneck.  This module removes it in two
layers:

1. **Deduplication** — on a deterministic device (fixed seed, or ASLR and
   schedule shuffling both off) equal inputs produce byte-identical
   traces, so the ~100 fixed-input repetitions collapse to *one* recorded
   trace with a repetition count (:func:`group_values`).

2. **Replica fusion** — the remaining *distinct* inputs (the random side)
   are executed as concurrent sessions whose kernel launches are fused
   into one mega cohort: R replicas of a G-warp launch run as the extra
   rows of an ``(R*G, 32)`` lane grid (:class:`_ReplicaCohortEngine`).
   Each replica owns its own device, memory and event monitor; only the
   NumPy interpretation of the kernel body is shared.  Divergent control
   flow between replicas is handled by the cohort engine's existing
   sub-cohort splitting + :class:`~repro.gpusim.memory.WriteJournal`
   rollback, and :meth:`CohortContext.replay_events` re-expands
   byte-identical per-run event streams — evidence, store fingerprints
   and degradation ladders are untouched.

Equivalence envelope
--------------------
Programs under test must be deterministic functions of ``(rt, value)``
that do not mutate their input value — the same contract the store's
content-addressed caching and the ``[fixed_input] * N`` evidence protocol
already assume.  Anything the engine cannot fuse (incompatible launch
geometry, injected faults, envelope violations, program exceptions) falls
back down the degradation ladder: fused → per-replica
(:data:`~repro.resilience.events.REPLICA_TO_RUN`) → plain serial
re-recording of the whole batch, each rung byte-identical by contract.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CohortEnvelopeError
from repro.gpusim.cohort import CohortContext, CohortSplit, ReplicaBuffer
from repro.gpusim.context import SimtDivergenceError
from repro.gpusim.device import Device, DeviceConfig, LaunchError
from repro.gpusim.events import KernelBeginEvent, KernelEndEvent
from repro.gpusim.kernel import Kernel, LaunchConfig
from repro.gpusim.memory import DeviceBuffer, MemorySpace, WriteJournal
from repro.host.callstack import current_stack_depth
from repro.host.runtime import CudaRuntime
from repro.resilience import events as resilience_events
from repro.resilience import faults as fault_injection
from repro.tracing.channel import Channel
from repro.tracing.monitor import WarpTraceMonitor
from repro.tracing.recorder import (
    Program,
    ProgramTrace,
    RecordingError,
    TraceRecorder,
    KernelInvocation,
    _SessionTracer,
)


class _ReplicaAbort(BaseException):
    """Raised inside a session thread to unwind a parked program.

    Derives from ``BaseException`` so even a program with a blanket
    ``except Exception`` cannot swallow the shutdown.
    """


class _BatchAbandoned(Exception):
    """The replica batch cannot continue; re-record every run serially."""


@dataclass
class ReplicaStats:
    """Counters describing how one batch of runs was executed."""

    #: runs that were never executed because an earlier identical run's
    #: trace was reused (deterministic-device deduplication)
    dedup_runs: int = 0
    #: fused mega-cohort executions (each covers several replica launches)
    fused_groups: int = 0
    #: member launches executed inside a fused mega cohort
    fused_launches: int = 0
    #: member launches that fell back to single (per-replica) execution
    fallback_launches: int = 0

    def merge(self, other: "ReplicaStats") -> None:
        self.dedup_runs += other.dedup_runs
        self.fused_groups += other.fused_groups
        self.fused_launches += other.fused_launches
        self.fallback_launches += other.fallback_launches


# ----------------------------------------------------------------------
# deterministic-device deduplication
# ----------------------------------------------------------------------

def device_is_deterministic(config: DeviceConfig) -> bool:
    """True when equal inputs are guaranteed byte-identical traces.

    A fixed seed pins both the ASLR layout draws and the schedule
    shuffles; with neither randomisation enabled the device is
    deterministic regardless of seed.
    """
    if config.seed is not None:
        return True
    return not config.aslr and not config.shuffle_schedule


def _values_equal(a: object, b: object) -> bool:
    if a is b:
        return True
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a_arr, b_arr = np.asarray(a), np.asarray(b)
        return (a_arr.dtype == b_arr.dtype and a_arr.shape == b_arr.shape
                and bool(np.array_equal(a_arr, b_arr)))
    if type(a) is not type(b):
        return False
    try:
        return bool(a == b)
    except Exception:
        return False


def group_values(values: Sequence[object],
                 deterministic: bool) -> List[Tuple[object, int]]:
    """Collapse consecutive equal values into ``(value, count)`` groups.

    On a non-deterministic device every run is its own group: equal
    inputs may legitimately produce different traces there, so nothing
    may be deduplicated.
    """
    groups: List[Tuple[object, int]] = []
    for value in values:
        if (deterministic and groups
                and _values_equal(groups[-1][0], value)):
            groups[-1] = (groups[-1][0], groups[-1][1] + 1)
        else:
            groups.append((value, 1))
    return groups


# ----------------------------------------------------------------------
# one replica session: a full recorder stack parked at each launch
# ----------------------------------------------------------------------

class _ReplicaDevice(Device):
    """Device whose launches park the program thread for fused execution.

    Geometry validation and the schedule draw happen *before* parking, in
    the program thread, so invalid launches raise exactly where the
    serial path raises and the device RNG stream matches serial runs.
    """

    def __init__(self, session: "_ReplicaSession", config: DeviceConfig,
                 columnar: bool, cohort: bool) -> None:
        super().__init__(config, columnar=columnar, cohort=cohort)
        self._session = session

    def launch(self, kern: Kernel, grid, block, *args) -> None:
        launch = LaunchConfig.create(grid, block)
        if launch.threads_per_block > self.config.max_threads_per_block:
            raise LaunchError(
                f"{launch.threads_per_block} threads/block exceeds device "
                f"limit {self.config.max_threads_per_block}")
        schedule = [(b, w)
                    for b in range(launch.num_blocks)
                    for w in range(launch.warps_per_block)]
        if self.config.shuffle_schedule:
            self._rng.shuffle(schedule)
        self._session.park_at_launch(kern, grid, block, args, launch,
                                     schedule)


@dataclass
class _PendingLaunch:
    """One parked launch awaiting coordinated execution."""

    kern: Kernel
    grid: object
    block: object
    args: tuple
    launch: LaunchConfig
    schedule: list


class _ReplicaSession:
    """One replica's full recording stack, driven launch-by-launch.

    The program runs on a daemon thread that parks at every kernel
    launch; the coordinator (the engine, on the caller's thread) executes
    parked launches — fused with compatible peers when possible — and
    resumes the thread.  Exactly one of the two is ever running, so the
    interleaving is deterministic.  All wiring (tracer, monitor, channel,
    call-stack anchor) mirrors :meth:`TraceRecorder.record` exactly.
    """

    def __init__(self, program: Program, value: object,
                 config: DeviceConfig, columnar: bool, cohort: bool) -> None:
        self.value = value
        self._program = program
        self.device = _ReplicaDevice(self, config, columnar, cohort)
        self.tracer = _SessionTracer(self.device.memory)
        self.monitor = WarpTraceMonitor(
            normalizer=lambda addr: self.tracer.normalize(addr).as_key(),
            batch_normalizer=self.tracer.normalize_keys,
            key_id_normalizer=self.tracer.normalize_key_ids)
        self._channel = Channel(sink=self.monitor.on_event)
        self.tracer.bind_monitor(self.monitor)
        self.device.subscribe(self._channel.send)
        self.runtime = CudaRuntime(self.device)
        self.runtime.attach_tracer(self.tracer)

        self.pending: Optional[_PendingLaunch] = None
        self.finished = False
        self.error: Optional[BaseException] = None
        self.abort = False
        self._resume = threading.Event()
        self._parked = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    # -- program-thread side -------------------------------------------

    def _run(self) -> None:
        self._resume.wait()
        self._resume.clear()
        try:
            if not self.abort:
                # anchor inside the thread: raw[anchor:] then holds only
                # program frames, exactly as in TraceRecorder.record
                self.runtime.call_stack_anchor = current_stack_depth()
                self._program(self.runtime, self.value)
        except _ReplicaAbort:
            pass
        except BaseException as error:  # surfaced by the coordinator
            self.error = error
        finally:
            self.runtime.detach_tracer()
            self.device.unsubscribe(self._channel.send)
            self.finished = True
            self._parked.set()

    def park_at_launch(self, kern: Kernel, grid, block, args,
                       launch: LaunchConfig, schedule: list) -> None:
        self.pending = _PendingLaunch(kern=kern, grid=grid, block=block,
                                      args=args, launch=launch,
                                      schedule=schedule)
        self._parked.set()
        self._resume.wait()
        self._resume.clear()
        if self.abort:
            raise _ReplicaAbort()

    # -- coordinator side ----------------------------------------------

    def step(self) -> None:
        """Resume the program thread until its next park (or completion)."""
        self.pending = None
        self._resume.set()
        self._parked.wait()
        self._parked.clear()

    def shutdown(self) -> None:
        if not self.finished:
            self.abort = True
            self._resume.set()
        self._thread.join(timeout=30.0)

    def finish_trace(self) -> ProgramTrace:
        """Join host and device observations, as the serial recorder does."""
        graphs = self.monitor.finish()
        launches = self.tracer.launch_records
        if len(graphs) != len(launches):
            raise RecordingError(
                f"host saw {len(launches)} launches but device produced "
                f"{len(graphs)} kernel traces")
        invocations = [
            KernelInvocation(identity=launch.identity,
                             kernel_name=launch.kernel_name, seq=launch.seq,
                             grid=launch.grid, block=launch.block,
                             adcfg=graph)
            for launch, graph in zip(launches, graphs)
        ]
        return ProgramTrace(invocations=invocations,
                            malloc_records=list(self.tracer.malloc_records),
                            launch_records=list(launches))


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

def _alias_pattern(args: tuple) -> tuple:
    """Buffer-aliasing fingerprint of a launch's argument tuple."""
    seen: Dict[int, int] = {}
    pattern = []
    for index, arg in enumerate(args):
        if isinstance(arg, DeviceBuffer):
            pattern.append(seen.setdefault(id(arg), index))
        else:
            pattern.append(-1)
    return tuple(pattern)


class _ReplicaCohortEngine:
    """Runs several replica sessions, fusing compatible parked launches."""

    def __init__(self, config: DeviceConfig, columnar: bool,
                 cohort: bool) -> None:
        self._config = config
        self._columnar = columnar
        self._cohort = cohort
        self.stats = ReplicaStats()

    def record_batch(self, program: Program,
                     values: Sequence[object]) -> List[ProgramTrace]:
        sessions = [_ReplicaSession(program, value, self._config,
                                    self._columnar, self._cohort)
                    for value in values]
        try:
            self._drive(sessions)
        except _BatchAbandoned:
            raise
        except BaseException as error:
            self._abort(sessions)
            raise _BatchAbandoned(str(error)) from error
        failed = next((s for s in sessions if s.error is not None), None)
        if failed is not None:
            self._abort(sessions)
            raise _BatchAbandoned(
                f"program raised {type(failed.error).__name__}: "
                f"{failed.error}")
        try:
            return [s.finish_trace() for s in sessions]
        except BaseException as error:
            raise _BatchAbandoned(str(error)) from error

    # -- scheduling ----------------------------------------------------

    def _drive(self, sessions: List["_ReplicaSession"]) -> None:
        for session in sessions:
            session.step()
        while True:
            if any(s.error is not None for s in sessions):
                raise _BatchAbandoned("a replica session raised")
            waiting = [s for s in sessions if not s.finished]
            if not waiting:
                return
            for group in self._compatible_groups(waiting):
                self._execute_group(group)
            for session in waiting:
                session.step()

    def _compatible_groups(
            self, waiting: List["_ReplicaSession"]
    ) -> List[List["_ReplicaSession"]]:
        groups: List[List[_ReplicaSession]] = []
        for session in waiting:
            for group in groups:
                if self._compatible(group[0], session):
                    group.append(session)
                    break
            else:
                groups.append([session])
        return groups

    def _compatible(self, a: "_ReplicaSession",
                    b: "_ReplicaSession") -> bool:
        pa, pb = a.pending, b.pending
        if pa.kern is not pb.kern or pa.launch != pb.launch:
            return False
        if pa.schedule != pb.schedule:
            return False
        if len(pa.args) != len(pb.args):
            return False
        if _alias_pattern(pa.args) != _alias_pattern(pb.args):
            return False
        for arg_a, arg_b in zip(pa.args, pb.args):
            if isinstance(arg_a, DeviceBuffer):
                if not isinstance(arg_b, DeviceBuffer):
                    return False
                if (arg_a.data.dtype != arg_b.data.dtype
                        or arg_a.data.shape != arg_b.data.shape
                        or arg_a.space is not arg_b.space):
                    return False
            else:
                if isinstance(arg_b, DeviceBuffer):
                    return False
                if not _values_equal(arg_a, arg_b):
                    return False
        return True

    # -- execution -----------------------------------------------------

    def _execute_group(self, group: List["_ReplicaSession"]) -> None:
        pending = group[0].pending
        kern = pending.kern
        fusible = (len(group) > 1 and self._cohort and kern.cohort
                   and len(group) * pending.launch.total_warps > 1)
        if fusible:
            for session in group:
                ordinal = session.device.launch_count
                fault = fault_injection.replica_violation_for(ordinal)
                if fault is not None:
                    resilience_events.record_degradation(
                        resilience_events.REPLICA_TO_RUN, "replica",
                        f"injected replica fusion violation for launch "
                        f"{ordinal} of {kern.name!r} ({fault.render()})",
                        kernel=kern.name, launch=ordinal)
                    fusible = False
                    break
                if fault_injection.cohort_violation_for(ordinal) is not None:
                    # run the members singly so each one's cohort engine
                    # trips the injected violation and records the same
                    # cohort → warp degradation as a serial run would
                    fusible = False
                    break
        if not fusible:
            for session in group:
                self._execute_single(session)
            return
        shared_stores: List[dict] = [{} for _ in group]
        try:
            self._execute_fused(group, shared_stores)
        except (CohortEnvelopeError, SimtDivergenceError) as error:
            resilience_events.record_degradation(
                resilience_events.REPLICA_TO_RUN, "replica", str(error),
                kernel=kern.name, launch=group[0].device.launch_count)
            for slot, session in enumerate(group):
                self._execute_single(session,
                                     shared_store=shared_stores[slot])

    def _execute_single(self, session: "_ReplicaSession",
                        shared_store: Optional[dict] = None) -> None:
        pending = session.pending
        session.device.launch_scheduled(
            pending.kern, pending.grid, pending.block, pending.args,
            schedule=pending.schedule, shared_store=shared_store)
        self.stats.fallback_launches += 1

    def _execute_fused(self, group: List["_ReplicaSession"],
                       shared_stores: List[dict]) -> None:
        from time import perf_counter

        from repro import profiling

        prof = profiling.profiler()
        if prof is None:
            return self._execute_fused_impl(group, shared_stores)
        started = perf_counter()
        emit_before = prof.get("event_emit")
        try:
            return self._execute_fused_impl(group, shared_stores)
        finally:
            elapsed = perf_counter() - started
            emitted = prof.get("event_emit") - emit_before
            prof.add("kernel_execute", elapsed - emitted)

    def _execute_fused_impl(self, group: List["_ReplicaSession"],
                            shared_stores: List[dict]) -> None:
        pending = group[0].pending
        kern, launch = pending.kern, pending.launch
        replicas = len(group)
        warps = launch.total_warps

        # fused argument tuple: one ReplicaBuffer per distinct buffer
        # position (aliased positions share), scalars passed through
        fused_cache: Dict[tuple, ReplicaBuffer] = {}
        fused_args = []
        for position, arg in enumerate(pending.args):
            if isinstance(arg, DeviceBuffer):
                members = [s.pending.args[position] for s in group]
                key = tuple(id(buf) for buf in members)
                fused = fused_cache.get(key)
                if fused is None:
                    fused = ReplicaBuffer(members)
                    fused_cache[key] = fused
                fused_args.append(fused)
            else:
                fused_args.append(arg)

        # shared allocations dispatch to each slot's own device so the
        # per-device allocation sequences stay byte-identical to serial
        # runs; after a split the sub-cohorts may execute in an order
        # that differs from any member's serial order, so a *new*
        # allocation there would land at the wrong address — that is an
        # envelope violation and the group falls back to singles
        split_state = {"occurred": False}

        def shared_alloc(slot: int, block_id: int, name: str, shape,
                         dtype) -> DeviceBuffer:
            store = shared_stores[slot]
            key = (block_id, name)
            buf = store.get(key)
            if buf is None:
                if split_state["occurred"]:
                    raise CohortEnvelopeError(
                        f"replica cohort of {kern.name!r} allocated shared "
                        f"buffer {name!r} after a divergence split; "
                        "per-device allocation order is no longer the "
                        "serial order")
                buf = group[slot].device.memory.alloc(
                    shape, dtype=dtype, space=MemorySpace.SHARED,
                    label=f"{kern.name}.shared.{name}")
                store[key] = buf
            return buf

        num = replicas * warps
        base_blocks = np.fromiter((b for b, _w in pending.schedule),
                                  dtype=np.int64, count=warps)
        base_warps = np.fromiter((w for _b, w in pending.schedule),
                                 dtype=np.int64, count=warps)
        block_ids = np.tile(base_blocks, replicas)
        warp_ids = np.tile(base_warps, replicas)
        slots = np.repeat(np.arange(replicas, dtype=np.int64), warps)

        rows_pending = [np.arange(num, dtype=np.int64)]
        payloads: Dict[int, tuple] = {}
        completed: List[WriteJournal] = []
        attempts = 0
        try:
            while rows_pending:
                rows = rows_pending.pop(0)
                attempts += 1
                if attempts > 2 * num + 8:
                    raise CohortEnvelopeError(
                        f"replica cohort execution of {kern.name!r} did "
                        f"not converge after {attempts} attempts")
                journal = WriteJournal()
                ctx = CohortContext(
                    launch=launch, rows=rows, block_ids=block_ids[rows],
                    warp_ids=warp_ids[rows], shared_alloc=shared_alloc,
                    columnar=self._columnar, journal=journal,
                    step_budget=self._config.cohort_step_budget,
                    replica_slots=slots[rows])
                try:
                    kern(ctx, *fused_args)
                except CohortSplit as split:
                    journal.rollback()
                    split_state["occurred"] = True
                    rows_pending = split.groups + rows_pending
                    continue
                except BaseException:
                    journal.rollback()
                    raise
                completed.append(journal)
                payloads.update(ctx.replay_events())
        except BaseException:
            for journal in reversed(completed):
                journal.rollback()
            raise
        for journal in completed:
            journal.commit()
        for fused in fused_cache.values():
            fused.writeback()

        # retire per member, in slot order: each session's monitor sees
        # exactly the event stream its own serial launch would produce
        for slot, session in enumerate(group):
            device = session.device
            device.launch_count += 1
            device._emit(KernelBeginEvent(
                kernel_name=kern.name, grid=launch.grid,
                block=launch.block, total_threads=launch.total_threads,
                num_warps=launch.total_warps))
            for position in range(warps):
                events, batch = payloads[slot * warps + position]
                for event in events:
                    device._emit(event)
                if batch is not None:
                    device._emit(batch)
            device._emit(KernelEndEvent(kernel_name=kern.name))
        self.stats.fused_groups += 1
        self.stats.fused_launches += replicas

    # -- teardown ------------------------------------------------------

    def _abort(self, sessions: List["_ReplicaSession"]) -> None:
        for session in sessions:
            session.shutdown()


# ----------------------------------------------------------------------
# public entry point
# ----------------------------------------------------------------------

def record_grouped(
        program: Program, values: Sequence[object],
        device_config: Optional[DeviceConfig] = None,
        columnar: bool = True, cohort: bool = True, dedup: bool = False,
) -> Tuple[List[Tuple[ProgramTrace, int]], ReplicaStats]:
    """Record *values* as one replica batch.

    Returns ``(groups, stats)`` where each group is ``(trace, count)``:
    expanding every trace ``count`` times in order reproduces the serial
    ``[record(program, v) for v in values]`` byte for byte.

    ``dedup=True`` additionally collapses consecutive equal values into
    one recording on a deterministic device.  That is only sound when the
    program is a pure function of ``(rt, value)`` — a program drawing
    per-run randomness of its own (e.g. an ORAM-style rotation) produces
    distinct traces for equal inputs, which fused replicas reproduce but
    deduplication would flatten — so it is opt-in, never inferred.
    """
    config = device_config or DeviceConfig()
    values = list(values)
    groups = group_values(values,
                          dedup and device_is_deterministic(config))
    reps = [value for value, _count in groups]
    counts = [count for _value, count in groups]
    stats = ReplicaStats(dedup_runs=len(values) - len(reps))

    if len(reps) < 2:
        recorder = TraceRecorder(config, columnar=columnar, cohort=cohort)
        traces = [recorder.record(program, value) for value in reps]
        return list(zip(traces, counts)), stats

    engine = _ReplicaCohortEngine(config, columnar, cohort)
    try:
        traces = engine.record_batch(program, reps)
    except _BatchAbandoned as abandoned:
        resilience_events.record_degradation(
            resilience_events.REPLICA_TO_RUN, "replica",
            f"replica batch abandoned, re-recording serially: {abandoned}",
            runs=len(reps))
        recorder = TraceRecorder(config, columnar=columnar, cohort=cohort)
        traces = [recorder.record(program, value) for value in reps]
        return list(zip(traces, counts)), stats
    stats.merge(engine.stats)
    return list(zip(traces, counts)), stats
