"""Hierarchical trace recording: one execution → one :class:`ProgramTrace`.

:class:`TraceRecorder` assembles the full §V pipeline for a single program
execution:

1. a fresh simulated :class:`~repro.gpusim.device.Device` (fresh memory
   layout, like a fresh process);
2. a :class:`~repro.host.runtime.CudaRuntime` with a Pin-like
   :class:`~repro.host.tracer.HostTracer` capturing malloc/launch records
   and providing address normalisation;
3. an NVBit-like :class:`~repro.tracing.channel.Channel` feeding a
   :class:`~repro.tracing.monitor.WarpTraceMonitor` that folds warp events
   into one A-DCFG per kernel invocation.

A *program under test* is any callable ``program(rt, value)`` that drives
the :class:`~repro.host.runtime.CudaRuntime` — the same shape as a CUDA
``main()`` taking a secret input.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.adcfg.graph import ADCFG
from repro.adcfg.serialize import adcfg_size_bytes, serialize_adcfg
from repro.errors import TraceError
from repro.gpusim.device import Device, DeviceConfig
from repro.host.callstack import current_stack_depth
from repro.host.runtime import CudaRuntime, LaunchRecord, MallocRecord
from repro.host.tracer import HostTracer
from repro.tracing.channel import Channel
from repro.tracing.monitor import WarpTraceMonitor

#: A program under test: drives the runtime with one (secret) input value.
Program = Callable[[CudaRuntime, object], object]


class RecordingError(TraceError):
    """Raised when host and device observations cannot be joined."""


@dataclass
class KernelInvocation:
    """One kernel launch: host identity joined with its device A-DCFG."""

    identity: str
    kernel_name: str
    seq: int
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    adcfg: ADCFG

    @property
    def total_threads(self) -> int:
        return self.adcfg.total_threads


class ProgramTrace:
    """The complete trace of one program execution."""

    def __init__(self, invocations: List[KernelInvocation],
                 malloc_records: List[MallocRecord],
                 launch_records: List[LaunchRecord]) -> None:
        self.invocations = invocations
        self.malloc_records = malloc_records
        self.launch_records = launch_records
        self._signature: Optional[str] = None
        self._size_bytes: Optional[int] = None

    @property
    def kernel_sequence(self) -> Tuple[str, ...]:
        """Ordered kernel identities — the program-level trace T_P."""
        return tuple(inv.identity for inv in self.invocations)

    # ------------------------------------------------------------------
    # size accounting (Fig. 5 / Table IV)
    # ------------------------------------------------------------------

    def adcfg_bytes(self) -> int:
        return sum(adcfg_size_bytes(inv.adcfg) for inv in self.invocations)

    def malloc_bytes(self) -> int:
        return sum(r.size_bytes() for r in self.malloc_records)

    def launch_bytes(self) -> int:
        return sum(r.size_bytes() for r in self.launch_records)

    def trace_size_bytes(self) -> int:
        """Total serialised trace footprint.

        Memoised like :meth:`signature` (a trace is immutable once
        recorded): sizing serialises every A-DCFG, and the recording
        pool's accounting asks per run while replica batching shares one
        trace object across its deduplicated runs.
        """
        if self._size_bytes is None:
            self._size_bytes = (self.adcfg_bytes() + self.malloc_bytes()
                                + self.launch_bytes())
        return self._size_bytes

    # ------------------------------------------------------------------
    # equality / signatures (duplicates-removing phase)
    # ------------------------------------------------------------------

    def signature(self) -> str:
        """Stable digest of the trace content.

        Two executions with identical kernel sequences and identical
        A-DCFGs (§VI's trace-equality criterion) share a signature.
        Memoised: a trace is immutable once recorded, and the filtering
        phase, worker transfers, and tests all re-ask for the digest.
        """
        if self._signature is None:
            hasher = hashlib.sha256()
            for inv in self.invocations:
                hasher.update(inv.identity.encode())
                hasher.update(serialize_adcfg(inv.adcfg))
            self._signature = hasher.hexdigest()
        return self._signature

    def __eq__(self, other) -> bool:
        if not isinstance(other, ProgramTrace):
            return NotImplemented
        if self.kernel_sequence != other.kernel_sequence:
            return False
        return all(a.adcfg == b.adcfg
                   for a, b in zip(self.invocations, other.invocations))

    def __repr__(self) -> str:
        return (f"ProgramTrace(invocations={len(self.invocations)}, "
                f"size={self.trace_size_bytes()}B)")


class _IdentityQueue:
    """Monitor stand-in for buffered mode: queues launch identities so they
    can be replayed in order when the channel drains."""

    def __init__(self, pending: List[str]) -> None:
        self._pending = pending

    def expect_kernel(self, identity: str) -> None:
        self._pending.append(identity)


class _SessionTracer(HostTracer):
    """Host tracer that also announces identities to the device monitor."""

    def __init__(self, memory) -> None:
        super().__init__(memory)
        self._monitor: Optional[WarpTraceMonitor] = None

    def bind_monitor(self, monitor: WarpTraceMonitor) -> None:
        self._monitor = monitor

    def on_launch(self, record: LaunchRecord) -> None:
        super().on_launch(record)
        if self._monitor is not None:
            self._monitor.expect_kernel(record.identity)


class TraceRecorder:
    """Records program executions into :class:`ProgramTrace` objects.

    ``buffered=True`` switches the NVBit-like channel from eager delivery to
    the batched configuration the real tool uses to amortise device→host
    transfers: events accumulate on the channel and are drained into the
    monitor after the program finishes.  Both modes produce identical
    traces (asserted in the tests); buffered mode additionally exercises
    the transport's ordering guarantees.

    ``columnar=True`` (the default) uses the columnar fast path: warps
    buffer memory accesses and ship one
    :class:`~repro.gpusim.events.MemoryBatchEvent` per warp through the
    channel, addresses are normalised with one vectorised ``searchsorted``
    per instruction, and the A-DCFG is folded in bulk.  ``columnar=False``
    keeps the per-event object pipeline as the reference implementation;
    both produce byte-identical :class:`ProgramTrace` signatures (asserted
    in the tests, in every combination with buffering, schedule shuffling,
    and ASLR).

    ``cohort=True`` (the default) executes every warp of a launch in one
    NumPy pass over a ``(num_warps, 32)`` lane grid
    (:mod:`repro.gpusim.cohort`) and replays the identical per-warp event
    streams at retirement; ``cohort=False`` keeps the per-warp execution
    loop as the reference.  Traces are byte-identical either way (asserted
    across all bundled workloads).
    """

    def __init__(self, device_config: Optional[DeviceConfig] = None,
                 buffered: bool = False, columnar: bool = True,
                 cohort: bool = True) -> None:
        self._device_config = device_config or DeviceConfig()
        self._buffered = buffered
        self._columnar = columnar
        self._cohort = cohort

    def record(self, program: Program, value: object) -> ProgramTrace:
        """Execute ``program(rt, value)`` under full instrumentation."""
        device = Device(self._device_config, columnar=self._columnar,
                        cohort=self._cohort)
        tracer = _SessionTracer(device.memory)
        monitor = WarpTraceMonitor(
            normalizer=lambda addr: tracer.normalize(addr).as_key(),
            batch_normalizer=tracer.normalize_keys,
            key_id_normalizer=tracer.normalize_key_ids)

        if self._buffered:
            channel = Channel()
            # identities must be announced in launch order; queue them and
            # feed the monitor during the drain
            pending_identities = []
            tracer.bind_monitor(_IdentityQueue(pending_identities))
        else:
            channel = Channel(sink=monitor.on_event)
            tracer.bind_monitor(monitor)
        device.subscribe(channel.send)

        rt = CudaRuntime(device)
        rt.attach_tracer(tracer)
        # Anchor launch-site identities at the program's entry so the
        # recorder's (and its callers') own frames never differentiate
        # otherwise-identical executions.
        rt.call_stack_anchor = current_stack_depth()
        try:
            program(rt, value)
        finally:
            rt.detach_tracer()
            device.unsubscribe(channel.send)

        if self._buffered:
            from repro.gpusim.events import KernelBeginEvent
            identities = iter(pending_identities)
            for event in channel.drain():
                if isinstance(event, KernelBeginEvent):
                    monitor.expect_kernel(next(identities, event.kernel_name))
                monitor.on_event(event)

        graphs = monitor.finish()
        launches = tracer.launch_records
        if len(graphs) != len(launches):
            raise RecordingError(
                f"host saw {len(launches)} launches but device produced "
                f"{len(graphs)} kernel traces")
        invocations = [
            KernelInvocation(identity=launch.identity,
                             kernel_name=launch.kernel_name, seq=launch.seq,
                             grid=launch.grid, block=launch.block,
                             adcfg=graph)
            for launch, graph in zip(launches, graphs)
        ]
        return ProgramTrace(invocations=invocations,
                            malloc_records=list(tracer.malloc_records),
                            launch_records=list(launches))

    def record_many(self, program: Program,
                    values: Sequence[object]) -> List[ProgramTrace]:
        """Record one trace per input value."""
        return [self.record(program, value) for value in values]
