"""The device→monitor event channel.

NVBit instrumentation injects trampoline code into each kernel; the
instrumentation functions push events through a channel to a host-side
monitor process.  We model the channel as an explicit FIFO so the transport
is visible (and testable) rather than a hidden function call: events can be
buffered and drained in batches, as the real tool does to amortise
device→host transfers.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterator, List, Optional

from repro.gpusim.events import TraceEvent


class Channel:
    """A FIFO of trace events with optional eager delivery.

    With a ``sink`` attached, events are forwarded immediately (the
    low-latency configuration); without one they accumulate until
    :meth:`drain` is called (the batched configuration).
    """

    def __init__(self, sink: Optional[Callable[[TraceEvent], None]] = None,
                 capacity: Optional[int] = None) -> None:
        self._queue: Deque[TraceEvent] = deque()
        self._sink = sink
        self._capacity = capacity
        self.total_events = 0

    def send(self, event: TraceEvent) -> None:
        """Push one event from the device side.

        The capacity check runs *before* the event is counted: a rejected
        event was never transported, so it must not inflate
        ``total_events`` (regression-tested).
        """
        if (self._sink is None and self._capacity is not None
                and len(self._queue) >= self._capacity):
            raise OverflowError(
                f"channel capacity {self._capacity} exceeded; drain first")
        self.total_events += 1
        if self._sink is not None:
            self._sink(event)
            return
        self._queue.append(event)

    def drain(self) -> List[TraceEvent]:
        """Pop and return all buffered events in order."""
        events = list(self._queue)
        self._queue.clear()
        return events

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._queue)
