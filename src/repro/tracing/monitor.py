"""The host-side monitor that turns warp events into A-DCFGs.

Per §V-C of the paper, the monitor identifies warps by the pair
*(block id, warp id)* — warp ids alone are only unique within a block — and
maintains each warp's trace context.  Basic-block and memory events are
folded straight into the current invocation's
:class:`~repro.adcfg.builder.ADCFGBuilder`, so per-thread data never
accumulates.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional

from repro import profiling
from repro.adcfg.builder import (
    ADCFGBuilder,
    BatchNormalizer,
    KeyIdNormalizer,
    Normalizer,
)
from repro.adcfg.graph import ADCFG
from repro.errors import TraceError
from repro.gpusim.events import (
    BasicBlockEvent,
    KernelBeginEvent,
    KernelEndEvent,
    MemoryAccessEvent,
    MemoryBatchEvent,
    SyncEvent,
    TraceEvent,
)
from repro.resilience import events as resilience_events
from repro.resilience import faults as fault_injection


class MonitorError(TraceError):
    """Raised when the event stream is malformed (e.g. unmatched begin/end)."""


class WarpTraceMonitor:
    """Consumes the device event stream for a sequence of kernel launches.

    The monitor does not know kernel identities (call stacks live on the
    host side); the caller supplies the identity for each upcoming launch
    through :meth:`expect_kernel`, mirroring how Owl joins Pin's launch
    records with NVBit's device stream.
    """

    def __init__(self, normalizer: Optional[Normalizer] = None,
                 batch_normalizer: Optional[BatchNormalizer] = None,
                 key_id_normalizer: Optional[KeyIdNormalizer] = None) -> None:
        self._normalizer = normalizer
        self._batch_normalizer = batch_normalizer
        self._key_id_normalizer = key_id_normalizer
        self._pending_identity: Optional[str] = None
        self._builder: Optional[ADCFGBuilder] = None
        self.completed: List[ADCFG] = []
        self.sync_events = 0

    def expect_kernel(self, identity: str) -> None:
        """Declare the identity of the next kernel launch."""
        self._pending_identity = identity

    # ------------------------------------------------------------------
    # event stream
    # ------------------------------------------------------------------

    def on_event(self, event: TraceEvent) -> None:
        profiler = profiling.profiler()
        if profiler is not None:
            started = perf_counter()
            try:
                self._dispatch(event)
            finally:
                profiler.add("adcfg_fold", perf_counter() - started)
            return
        self._dispatch(event)

    def _dispatch(self, event: TraceEvent) -> None:
        if isinstance(event, KernelBeginEvent):
            self._begin(event)
        elif isinstance(event, KernelEndEvent):
            self._end(event)
        elif isinstance(event, BasicBlockEvent):
            self._require_builder().on_basic_block(event)
        elif isinstance(event, MemoryAccessEvent):
            self._require_builder().on_memory_access(event)
        elif isinstance(event, MemoryBatchEvent):
            self._fold_batch(event)
        elif isinstance(event, SyncEvent):
            self.sync_events += 1
        else:
            raise MonitorError(f"unknown trace event {event!r}")

    def _fold_batch(self, event: MemoryBatchEvent) -> None:
        """Accept a columnar batch, downgrading to per-event replay on fault.

        Healthy batches are buffered on the builder and folded kernel-wide
        at :meth:`_end`.  An injected ``batch_fold_error`` degrades this
        batch immediately: the object path (``iter_events`` through
        ``on_memory_access``) is proven identical to the batched fold, so
        the fault costs speed, never correctness — the columnar → object
        rung of the degradation ladder.
        """
        builder = self._require_builder()
        kernel_name = builder.graph.kernel_name
        fault = fault_injection.batch_fold_fault_for(kernel_name)
        if fault is None:
            builder.on_memory_batch(event)
            return
        reason = (f"injected batch-fold failure for kernel "
                  f"{kernel_name!r} ({fault.render()})")
        resilience_events.record_degradation(
            resilience_events.COLUMNAR_TO_OBJECT, "monitor", reason,
            kernel=kernel_name, block=event.block_id, warp=event.warp_id)
        for item in event.iter_events():
            builder.on_memory_access(item)

    def _flush_batches(self, builder: ADCFGBuilder) -> None:
        """Run the kernel-wide fold, downgrading to per-event replay on error.

        The vectorised fold fails before the graph is touched (packing,
        sorting and normaliser errors all precede mutation), so the replay
        below starts from a clean slate and produces the identical graph.
        """
        try:
            builder.fold_pending_batches()
        except MonitorError:
            raise
        except Exception as error:
            resilience_events.record_degradation(
                resilience_events.COLUMNAR_TO_OBJECT, "monitor", str(error),
                kernel=builder.graph.kernel_name)
            for batch in builder.take_pending_batches():
                for item in batch.iter_events():
                    builder.on_memory_access(item)

    def _begin(self, event: KernelBeginEvent) -> None:
        if self._builder is not None:
            raise MonitorError(
                f"kernel {event.kernel_name!r} began while another launch "
                "is still active")
        identity = self._pending_identity or event.kernel_name
        self._pending_identity = None
        self._builder = ADCFGBuilder(
            kernel_identity=identity, kernel_name=event.kernel_name,
            total_threads=event.total_threads, num_warps=event.num_warps,
            normalizer=self._normalizer,
            batch_normalizer=self._batch_normalizer,
            key_id_normalizer=self._key_id_normalizer)

    def _end(self, event: KernelEndEvent) -> None:
        builder = self._require_builder()
        if builder.graph.kernel_name != event.kernel_name:
            raise MonitorError(
                f"kernel end for {event.kernel_name!r} does not match the "
                f"active launch {builder.graph.kernel_name!r}")
        self._flush_batches(builder)
        self.completed.append(builder.finish())
        self._builder = None

    def _require_builder(self) -> ADCFGBuilder:
        if self._builder is None:
            raise MonitorError("device event outside any kernel launch")
        return self._builder

    def finish(self) -> List[ADCFG]:
        """Return all completed invocation graphs; the stream must be closed."""
        if self._builder is not None:
            raise MonitorError(
                f"kernel {self._builder.graph.kernel_name!r} never ended")
        return self.completed
