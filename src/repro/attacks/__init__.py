"""Proof-of-exploitability attacks against the detected leaks.

Owl's job ends at *detection*; these modules close the loop by showing the
flagged leaks are real attack surface, in the spirit of the GPU attacks the
paper cites (Jiang et al.'s AES key recovery [6], the RSA timing attacks
[34, 35]):

* :mod:`repro.attacks.aes_recovery` — a cache-line observation attack on
  the T-table AES kernel recovering each key byte's line-granular class
  (the classic first-round elimination attack);
* :mod:`repro.attacks.timing` — a timing distinguisher built on the cache
  model, separating leaky from constant-flow implementations by cycle
  counts alone.
"""

from repro.attacks.aes_recovery import (
    aes_single_block_program,
    AesObservation,
    collect_observations,
    recover_key_classes,
    true_key_classes,
)
from repro.attacks.timing import time_program, timing_distinguisher

__all__ = [
    "AesObservation",
    "aes_single_block_program",
    "collect_observations",
    "recover_key_classes",
    "time_program",
    "timing_distinguisher",
    "true_key_classes",
]
