"""Cache-line key recovery against the T-table AES kernel.

The classic first-round attack (Osvik–Shamir–Tromer style, applied to GPUs
by Jiang et al., cited as [6] by the paper): in round one, table ``Tk`` is
indexed by ``plaintext[p] ^ key[p]`` for the byte positions ``p ≡ k
(mod 4)``.  An attacker who observes which *cache lines* of each table the
victim touched can eliminate key-byte candidates: candidate ``c`` survives
a trace only if line ``(plaintext[p] ^ c) >> 3`` was observed (8-byte
entries, 64-byte lines ⇒ 8 entries per line).  Later-round accesses add
noise lines but never remove the true candidate, so over a few dozen
random plaintexts each position converges to the true key byte's
line-class — 5 of its 8 bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.apps.libgpucrypto.aes import expand_key
from repro.apps.libgpucrypto.aes import aes128_ttable_kernel
from repro.apps.libgpucrypto.tables import SBOX_ARRAY, T_TABLES
from repro.gpusim.cache import CacheSimulator
from repro.gpusim.device import Device, DeviceConfig
from repro.host.runtime import CudaRuntime

#: 8-byte table entries on 64-byte lines: 8 entries per line
ENTRIES_PER_LINE = 8
LINE_BYTES = 64

#: byte positions of the key that index table Tk in round one
POSITIONS_PER_TABLE = {k: tuple(range(k, 16, 4)) for k in range(4)}


@dataclass(frozen=True)
class AesObservation:
    """One encryption's attacker view: plaintext + touched table lines."""

    plaintext: bytes
    #: table index (0..3) → set of line-granular byte offsets touched
    table_lines: Dict[int, frozenset]


def aes_single_block_program(rt: CudaRuntime, secret) -> None:
    """The attack victim: one chosen-plaintext block under *key*.

    ``secret`` is ``(key, plaintext)``.  Every lane encrypts the same
    block, so cache observations equal a single encryption's — thread
    partitioning of different blocks would instead blur them, the §IV-A
    volatility the paper discusses.
    """
    key, plaintext = secret
    if len(plaintext) != 16:
        raise ValueError("plaintext must be one 16-byte block")
    round_keys = expand_key(key)
    t_bufs = []
    for i, table in enumerate(T_TABLES):
        buf = rt.constMalloc(256, label=f"aes.T{i}")
        rt.cudaMemcpyHtoD(buf, table)
        t_bufs.append(buf)
    sbox = rt.constMalloc(256, label="aes.sbox")
    rt.cudaMemcpyHtoD(sbox, SBOX_ARRAY)
    rk = rt.cudaMalloc(44, label="aes.round_keys")
    rt.cudaMemcpyHtoD(rk, round_keys)
    words = [int.from_bytes(plaintext[4 * i:4 * i + 4], "big")
             for i in range(4)]
    pt = rt.cudaMalloc(4 * 32, label="aes.plaintext")
    rt.cudaMemcpyHtoD(pt, np.array(words * 32, dtype=np.int64))
    ct = rt.cudaMalloc(4 * 32, label="aes.ciphertext")
    rt.cuLaunchKernel(aes128_ttable_kernel, 1, 32, *t_bufs, sbox, rk, pt, ct)


def _encrypt_block_observed(key: bytes, plaintext: bytes) -> AesObservation:
    """Run one single-block encryption under the cache observer."""
    device = Device(DeviceConfig())
    simulator = CacheSimulator(memory=device.memory)
    device.subscribe(simulator.on_event)
    rt = CudaRuntime(device)
    aes_single_block_program(rt, (key, plaintext))

    stats = simulator.per_kernel[-1]
    table_lines = {i: frozenset(stats.touched(f"aes.T{i}"))
                   for i in range(4)}
    return AesObservation(plaintext=bytes(plaintext),
                          table_lines=table_lines)


def collect_observations(key: bytes, num_traces: int,
                         rng: Optional[np.random.Generator] = None
                         ) -> List[AesObservation]:
    """Encrypt *num_traces* random plaintexts under observation."""
    rng = rng or np.random.default_rng(0)
    observations = []
    for _ in range(num_traces):
        plaintext = bytes(int(b) for b in rng.integers(0, 256, 16))
        observations.append(_encrypt_block_observed(key, plaintext))
    return observations


def recover_key_classes(observations: Sequence[AesObservation]
                        ) -> List[Set[int]]:
    """Eliminate key-byte candidates; returns survivors per byte position.

    With enough traces each position's survivor set is exactly the true
    byte's line class: the 8 candidates sharing its top 5 bits.
    """
    survivors: List[Set[int]] = [set(range(256)) for _ in range(16)]
    for table_index, positions in POSITIONS_PER_TABLE.items():
        for observation in observations:
            lines = observation.table_lines[table_index]
            for position in positions:
                pt_byte = observation.plaintext[position]
                survivors[position] = {
                    candidate for candidate in survivors[position]
                    if (((pt_byte ^ candidate) // ENTRIES_PER_LINE)
                        * LINE_BYTES) in lines}
    return survivors


def true_key_classes(key: bytes) -> List[Set[int]]:
    """The theoretical floor: each byte's 8-candidate line class."""
    return [{candidate for candidate in range(256)
             if candidate >> 3 == byte >> 3} for byte in key]
