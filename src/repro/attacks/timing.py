"""Timing distinguishers built on the cache model.

GPU timing attacks (Jiang et al. [6, 29], Luo et al. [34, 35]) exploit the
fact that secret-dependent access patterns change cache hit rates, hence
execution time.  :func:`time_program` runs a program under the cache
hierarchy and returns its modelled cycle count;
:func:`timing_distinguisher` maps secrets to timings, separating leaky
implementations (secret-dependent collision patterns ⇒ varying cycles)
from constant-flow ones (identical traces ⇒ identical cycles).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.gpusim.cache import CacheHierarchy, CacheSimulator
from repro.gpusim.device import Device, DeviceConfig
from repro.host.callstack import current_stack_depth
from repro.host.runtime import CudaRuntime


def time_program(program: Callable, value: object,
                 device_config: Optional[DeviceConfig] = None,
                 hierarchy: Optional[CacheHierarchy] = None) -> int:
    """Modelled memory-system cycles of one execution of *program*."""
    device = Device(device_config or DeviceConfig())
    simulator = CacheSimulator(memory=device.memory, hierarchy=hierarchy)
    device.subscribe(simulator.on_event)
    rt = CudaRuntime(device)
    rt.call_stack_anchor = current_stack_depth()
    program(rt, value)
    return simulator.total_cycles()


def timing_distinguisher(program: Callable, secrets: Sequence[object],
                         device_config: Optional[DeviceConfig] = None
                         ) -> Dict[object, int]:
    """Cycle counts per secret (deterministic programs: exact values).

    A constant-flow implementation yields one distinct value; a leaky one
    yields several — the coarsest possible timing attack, and already
    enough to distinguish implementations.
    """
    return {secret: time_program(program, secret,
                                 device_config=device_config)
            for secret in secrets}
