"""Warp and lane primitives.

A warp is 32 lanes executing in lock step.  All per-lane values in the kernel
DSL are NumPy vectors of length :data:`WARP_SIZE`; the helpers here build and
validate such vectors.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: CUDA warp width, fixed at 32 on every NVIDIA architecture to date.
WARP_SIZE = 32

LaneValue = Union[int, float, bool, np.ndarray]


def lane_vector(value: LaneValue, dtype=None) -> np.ndarray:
    """Broadcast *value* to a length-:data:`WARP_SIZE` lane vector.

    Scalars are replicated to every lane; arrays must already have exactly
    :data:`WARP_SIZE` elements.
    """
    arr = np.asarray(value)
    if arr.ndim == 0:
        arr = np.full(WARP_SIZE, arr, dtype=dtype or arr.dtype)
    elif arr.shape != (WARP_SIZE,):
        raise ValueError(
            f"lane vectors must have shape ({WARP_SIZE},), got {arr.shape}")
    if dtype is not None and arr.dtype != dtype:
        arr = arr.astype(dtype)
    return arr


def lane_bool(value: LaneValue) -> np.ndarray:
    """Broadcast *value* to a boolean lane vector."""
    return lane_vector(value).astype(bool)


def full_mask() -> np.ndarray:
    """All 32 lanes active."""
    return np.ones(WARP_SIZE, dtype=bool)


def empty_mask() -> np.ndarray:
    """No lane active."""
    return np.zeros(WARP_SIZE, dtype=bool)


def is_uniform(values: np.ndarray, mask: np.ndarray) -> bool:
    """True when all *active* lanes of *values* agree.

    Warp-uniform branch conditions are the ones that show up in the warp's
    control-flow trace; divergent ones are predicated away.
    """
    active_values = np.asarray(values)[np.asarray(mask, dtype=bool)]
    if active_values.size == 0:
        return True
    return bool((active_values == active_values[0]).all())
