"""Warp and lane primitives.

A warp is 32 lanes executing in lock step.  All per-lane values in the kernel
DSL are NumPy vectors of length :data:`WARP_SIZE`; the helpers here build and
validate such vectors.

The warp-cohort engine (:mod:`repro.gpusim.cohort`) generalises lane values
to a ``(num_warps, WARP_SIZE)`` grid — one row per warp of the launch — so
:func:`cohort_vector` / :func:`cohort_bool` are the 2-D counterparts of
:func:`lane_vector` / :func:`lane_bool`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import ConfigError

#: CUDA warp width, fixed at 32 on every NVIDIA architecture to date.
WARP_SIZE = 32

LaneValue = Union[int, float, bool, np.ndarray]


def lane_vector(value: LaneValue, dtype=None) -> np.ndarray:
    """Broadcast *value* to a length-:data:`WARP_SIZE` lane vector.

    Scalars are replicated to every lane; arrays must already have exactly
    :data:`WARP_SIZE` elements.
    """
    arr = np.asarray(value)
    if arr.ndim == 0:
        arr = np.full(WARP_SIZE, arr, dtype=dtype or arr.dtype)
    elif arr.shape != (WARP_SIZE,):
        raise ConfigError(
            f"lane vectors must have shape ({WARP_SIZE},), got {arr.shape}")
    if dtype is not None and arr.dtype != dtype:
        arr = arr.astype(dtype)
    return arr


def lane_bool(value: LaneValue) -> np.ndarray:
    """Broadcast *value* to a boolean lane vector."""
    return lane_vector(value).astype(bool)


def cohort_vector(value: LaneValue, num_warps: int,
                  dtype=None) -> np.ndarray:
    """Broadcast *value* to a ``(num_warps, WARP_SIZE)`` lane grid.

    Accepted inputs, mirroring what a warp-level kernel body can produce:

    * scalars — replicated to every lane of every warp;
    * ``(num_warps, WARP_SIZE)`` grids — passed through;
    * ``(num_warps, 1)`` columns (per-warp scalars, e.g. a cohort
      ``reduce_sum`` result) — broadcast across the lanes of each warp;
    * ``(WARP_SIZE,)`` / ``(1, WARP_SIZE)`` lane vectors (host constants) —
      broadcast across warps.

    The result may be a read-only broadcast view; callers that mutate must
    copy, exactly like :class:`numpy.broadcast_to` consumers.
    """
    arr = np.asarray(value)
    shape = (num_warps, WARP_SIZE)
    if arr.ndim == 0:
        return np.full(shape, arr, dtype=dtype or arr.dtype)
    if arr.shape != shape:
        if arr.shape in ((num_warps, 1), (WARP_SIZE,), (1, WARP_SIZE), (1, 1)):
            arr = np.broadcast_to(arr, shape)
        else:
            raise ConfigError(
                f"cohort lane values must broadcast to {shape}, "
                f"got {arr.shape}")
    if dtype is not None and arr.dtype != dtype:
        arr = arr.astype(dtype)
    return arr


def cohort_bool(value: LaneValue, num_warps: int) -> np.ndarray:
    """Broadcast *value* to a boolean ``(num_warps, WARP_SIZE)`` grid."""
    arr = cohort_vector(value, num_warps)
    if arr.dtype != bool:
        arr = arr.astype(bool)
    return arr


def full_mask() -> np.ndarray:
    """All 32 lanes active."""
    return np.ones(WARP_SIZE, dtype=bool)


def empty_mask() -> np.ndarray:
    """No lane active."""
    return np.zeros(WARP_SIZE, dtype=bool)


def is_uniform(values: np.ndarray, mask: np.ndarray) -> bool:
    """True when all *active* lanes of *values* agree.

    Warp-uniform branch conditions are the ones that show up in the warp's
    control-flow trace; divergent ones are predicated away.
    """
    active_values = np.asarray(values)[np.asarray(mask, dtype=bool)]
    if active_values.size == 0:
        return True
    return bool((active_values == active_values[0]).all())
