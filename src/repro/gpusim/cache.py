"""A GPU cache-hierarchy model for the memory side of the threat model.

§IV-B grants the attacker fine-grained observation of "the memory hierarchy
(e.g., caches)".  This module makes that concrete: a set-associative LRU
cache (L1 per the Ampere description in §II-A, L2 shared) that consumes the
simulator's memory-access events and exposes

* hit/miss/cycle statistics per kernel (the timing side channel), and
* the set of cache lines touched per allocation (the access-pattern side
  channel a Prime+Probe/Flush+Reload attacker reconstructs).

The cycle costs are order-of-magnitude NVIDIA numbers; only their ordering
matters to the experiments.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.gpusim.events import (
    KernelBeginEvent,
    KernelEndEvent,
    MemoryAccessEvent,
    TraceEvent,
)
from repro.gpusim.memory import DeviceMemory

#: approximate latencies (cycles) per service level
L1_HIT_CYCLES = 28
L2_HIT_CYCLES = 190
DRAM_CYCLES = 475


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    line_size: int = 64
    num_sets: int = 64
    associativity: int = 4

    @property
    def capacity_bytes(self) -> int:
        return self.line_size * self.num_sets * self.associativity

    def set_index(self, address: int) -> int:
        return (address // self.line_size) % self.num_sets

    def tag(self, address: int) -> int:
        return address // (self.line_size * self.num_sets)

    def line_address(self, address: int) -> int:
        return (address // self.line_size) * self.line_size


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement."""

    def __init__(self, config: Optional[CacheConfig] = None) -> None:
        self.config = config or CacheConfig()
        # per set: tag -> None, ordered by recency (oldest first)
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(self.config.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch *address*; returns True on a hit."""
        index = self.config.set_index(address)
        tag = self.config.tag(address)
        entries = self._sets[index]
        if tag in entries:
            entries.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        entries[tag] = None
        if len(entries) > self.config.associativity:
            entries.popitem(last=False)  # evict LRU
        return False

    def contains(self, address: int) -> bool:
        """Non-destructive lookup (an idealised probe)."""
        index = self.config.set_index(address)
        return self.config.tag(address) in self._sets[index]

    def flush(self) -> None:
        for entries in self._sets:
            entries.clear()
        # statistics survive a flush; reset them explicitly if needed

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def resident_set_occupancy(self) -> List[int]:
        """Lines resident per set (what a priming attacker displaces)."""
        return [len(entries) for entries in self._sets]


class CacheHierarchy:
    """L1 → L2 → DRAM with additive-latency accounting."""

    def __init__(self, l1: Optional[CacheConfig] = None,
                 l2: Optional[CacheConfig] = None) -> None:
        self.l1 = SetAssociativeCache(l1 or CacheConfig())
        self.l2 = SetAssociativeCache(
            l2 or CacheConfig(line_size=64, num_sets=512, associativity=8))

    def access(self, address: int) -> Tuple[str, int]:
        """Service one address: returns ``(level, cycles)``."""
        if self.l1.access(address):
            return "L1", L1_HIT_CYCLES
        if self.l2.access(address):
            return "L2", L2_HIT_CYCLES
        return "DRAM", DRAM_CYCLES

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()


@dataclass
class KernelCacheStats:
    """Cache behaviour of one kernel launch."""

    kernel_name: str
    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    dram_accesses: int = 0
    cycles: int = 0
    #: per allocation label: set of line-granular offsets touched
    lines_touched: Dict[str, Set[int]] = field(default_factory=dict)

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.accesses if self.accesses else 0.0

    def touched(self, label: str) -> Set[int]:
        return set(self.lines_touched.get(label, set()))


class CacheSimulator:
    """Feeds a device's memory events through a cache hierarchy.

    Subscribe to a device (``device.subscribe(sim.on_event)``) before
    launching; per-launch statistics accumulate in :attr:`per_kernel`.
    When constructed with the device's :class:`DeviceMemory`, touched lines
    are additionally recorded as (allocation label, line offset) — the
    attacker's normalised view.
    """

    def __init__(self, memory: Optional[DeviceMemory] = None,
                 hierarchy: Optional[CacheHierarchy] = None,
                 flush_between_kernels: bool = True) -> None:
        self.hierarchy = hierarchy or CacheHierarchy()
        self._memory = memory
        self._flush_between = flush_between_kernels
        self.per_kernel: List[KernelCacheStats] = []
        self._current: Optional[KernelCacheStats] = None

    @property
    def line_size(self) -> int:
        return self.hierarchy.l1.config.line_size

    def on_event(self, event: TraceEvent) -> None:
        if isinstance(event, KernelBeginEvent):
            if self._flush_between:
                self.hierarchy.flush()
            self._current = KernelCacheStats(kernel_name=event.kernel_name)
            self.per_kernel.append(self._current)
        elif isinstance(event, KernelEndEvent):
            self._current = None
        elif isinstance(event, MemoryAccessEvent):
            if self._current is None:
                return
            for address in event.addresses:
                level, cycles = self.hierarchy.access(address)
                self._current.accesses += 1
                self._current.cycles += cycles
                if level == "L1":
                    self._current.l1_hits += 1
                elif level == "L2":
                    self._current.l2_hits += 1
                else:
                    self._current.dram_accesses += 1
                self._record_line(address)

    def _record_line(self, address: int) -> None:
        if self._memory is None or self._current is None:
            return
        try:
            allocation, offset = self._memory.resolve(address)
        except Exception:
            return
        line_offset = (offset // self.line_size) * self.line_size
        lines = self._current.lines_touched.setdefault(allocation.label,
                                                       set())
        lines.add(line_offset)

    def total_cycles(self) -> int:
        return sum(stats.cycles for stats in self.per_kernel)

    def stats_for(self, kernel_name: str) -> List[KernelCacheStats]:
        return [stats for stats in self.per_kernel
                if stats.kernel_name == kernel_name]
