"""The simulated GPU device: launch dispatch and event fan-out.

A :class:`Device` owns a :class:`~repro.gpusim.memory.DeviceMemory` and runs
kernel launches warp by warp.  Trace listeners (the NVBit-like channel in
:mod:`repro.tracing`) subscribe to receive every
:class:`~repro.gpusim.events.TraceEvent`.

Scheduling: warps of all blocks run to completion in sequence.  With
``shuffle_schedule=True`` the (block, warp) execution order is randomised per
launch, modelling the scheduler non-determinism that per-thread tools such as
DATA observe as trace reordering; Owl's A-DCFG aggregation is insensitive to
it by construction (there is a test asserting exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import profiling
from repro.errors import CohortEnvelopeError
from repro.gpusim.cohort import CohortContext, CohortSplit
from repro.gpusim.context import SimtDivergenceError, WarpContext
from repro.resilience import events as resilience_events
from repro.resilience import faults as fault_injection
from repro.gpusim.events import KernelBeginEvent, KernelEndEvent, TraceEvent
from repro.gpusim.kernel import Kernel, LaunchConfig
from repro.gpusim.memory import (
    DeviceBuffer,
    DeviceMemory,
    MemorySpace,
    WriteJournal,
)


@dataclass(frozen=True)
class DeviceConfig:
    """Static description of the simulated device (Table II analogue)."""

    name: str = "Simulated NVIDIA RTX A4000 (SIMT model)"
    sm_count: int = 48
    warp_size: int = 32
    max_threads_per_block: int = 1024
    global_memory_bytes: int = 16 * 1024 ** 3
    aslr: bool = False
    shuffle_schedule: bool = False
    seed: Optional[int] = None
    #: runaway-kernel guard for the cohort engine: maximum basic-block
    #: entries one cohort attempt may record before the launch is declared
    #: outside the envelope and re-executed per-warp (None = unbounded)
    cohort_step_budget: Optional[int] = None

    def describe(self) -> Dict[str, str]:
        """Key/value rows for the platform table."""
        return {
            "GPU (simulated)": self.name,
            "SMs": str(self.sm_count),
            "Warp size": str(self.warp_size),
            "Max threads/block": str(self.max_threads_per_block),
            "Global memory": f"{self.global_memory_bytes // 1024 ** 3} GiB",
            "Device ASLR": "enabled" if self.aslr else "disabled",
            "Warp scheduling": ("randomised" if self.shuffle_schedule
                                 else "deterministic"),
        }


class LaunchError(Exception):
    """Raised for invalid launch geometry."""


class Device:
    """A simulated CUDA-capable GPU."""

    def __init__(self, config: Optional[DeviceConfig] = None,
                 columnar: bool = False, cohort: bool = False) -> None:
        self.config = config or DeviceConfig()
        self.memory = DeviceMemory(aslr=self.config.aslr, seed=self.config.seed)
        self._listeners: List[Callable[[TraceEvent], None]] = []
        self._rng = np.random.default_rng(self.config.seed)
        self.launch_count = 0
        #: columnar tracing: warps buffer memory accesses and emit one
        #: MemoryBatchEvent at retirement instead of per-instruction events
        self.columnar = columnar
        #: warp-cohort execution: run all warps of a launch in one NumPy
        #: pass (see repro.gpusim.cohort); the per-warp loop stays as the
        #: byte-identical reference path
        self.cohort = cohort

    # ------------------------------------------------------------------
    # tracing hook-up
    # ------------------------------------------------------------------

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Register *listener* to receive every trace event."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        self._listeners.remove(listener)

    def _emit(self, event: TraceEvent) -> None:
        prof = profiling.profiler()
        if prof is None:
            for listener in self._listeners:
                listener(event)
            return
        started = perf_counter()
        for listener in self._listeners:
            listener(event)
        prof.add("event_emit", perf_counter() - started)

    # ------------------------------------------------------------------
    # memory convenience
    # ------------------------------------------------------------------

    def alloc(self, shape, dtype=np.int64,
              space: MemorySpace = MemorySpace.GLOBAL,
              label: str = "") -> DeviceBuffer:
        return self.memory.alloc(shape, dtype=dtype, space=space, label=label)

    def alloc_like(self, array: np.ndarray,
                   space: MemorySpace = MemorySpace.GLOBAL,
                   label: str = "") -> DeviceBuffer:
        return self.memory.alloc_like(array, space=space, label=label)

    def reset(self) -> None:
        """Clear memory and launch statistics (fresh process analogue)."""
        self.memory.reset()
        self.launch_count = 0

    # ------------------------------------------------------------------
    # launch
    # ------------------------------------------------------------------

    def launch(self, kern: Kernel, grid, block, *args) -> None:
        """Run *kern* over the grid/block geometry with *args*.

        Emits ``KernelBegin``, the per-warp trace, then ``KernelEnd``.
        Cohort-enabled devices execute all warps together (one NumPy pass
        over a ``(num_warps, 32)`` lane grid) and replay the identical
        per-warp event streams at retirement.
        """
        return self.launch_scheduled(kern, grid, block, args)

    def launch_scheduled(self, kern: Kernel, grid, block, args,
                         schedule=None, shared_store=None) -> None:
        """:meth:`launch` with an optionally pre-drawn warp *schedule* and
        an existing shared-allocation *store*.

        The replica-cohort engine (:mod:`repro.tracing.replica`) draws the
        schedule before parking a launch so the device RNG stream matches
        the serial recorder, and re-uses a fused attempt's shared
        allocations when it falls back to per-member execution — both must
        bypass the schedule/store setup without losing the profiling
        accounting, hence this entry point.
        """
        prof = profiling.profiler()
        if prof is None:
            return self._launch_impl(kern, grid, block, args,
                                     schedule=schedule,
                                     shared_store=shared_store)
        started = perf_counter()
        emit_before = prof.get("event_emit")
        try:
            return self._launch_impl(kern, grid, block, args,
                                     schedule=schedule,
                                     shared_store=shared_store)
        finally:
            elapsed = perf_counter() - started
            emitted = prof.get("event_emit") - emit_before
            prof.add("kernel_execute", elapsed - emitted)

    def _launch_impl(self, kern: Kernel, grid, block, args,
                     schedule=None, shared_store=None) -> None:
        launch = LaunchConfig.create(grid, block)
        if launch.threads_per_block > self.config.max_threads_per_block:
            raise LaunchError(
                f"{launch.threads_per_block} threads/block exceeds device "
                f"limit {self.config.max_threads_per_block}")
        self.launch_count += 1
        self._emit(KernelBeginEvent(
            kernel_name=kern.name, grid=launch.grid, block=launch.block,
            total_threads=launch.total_threads, num_warps=launch.total_warps))

        if shared_store is None:
            shared_store = {}

        def shared_alloc(block_id: int, name: str, shape, dtype) -> DeviceBuffer:
            key = (block_id, name)
            if key not in shared_store:
                # One allocation per block, but a block-independent label:
                # shared memory is a per-block address space, so offset 0 of
                # block 3's array and offset 0 of block 7's array are the
                # *same* location to the analysis.
                shared_store[key] = self.memory.alloc(
                    shape, dtype=dtype, space=MemorySpace.SHARED,
                    label=f"{kern.name}.shared.{name}")
            return shared_store[key]

        if schedule is None:
            schedule = [(b, w)
                        for b in range(launch.num_blocks)
                        for w in range(launch.warps_per_block)]
            if self.config.shuffle_schedule:
                self._rng.shuffle(schedule)

        if self.cohort and kern.cohort and launch.total_warps > 1:
            try:
                self._launch_cohort(kern, launch, args, shared_alloc,
                                    schedule)
            except (CohortEnvelopeError, SimtDivergenceError) as error:
                # the cohort engine left its race-free envelope (divergence
                # it cannot model, a tripped step budget, or an injected
                # violation): all speculative writes were rolled back and
                # no events were emitted, so the per-warp reference engine
                # can re-execute the launch from scratch — the degradation
                # ladder's cohort → warp rung, byte-identical by contract
                resilience_events.record_degradation(
                    resilience_events.COHORT_TO_WARP, "cohort", str(error),
                    kernel=kern.name, launch=self.launch_count - 1)
                self._launch_warps(kern, launch, args, shared_alloc,
                                   schedule)
        else:
            self._launch_warps(kern, launch, args, shared_alloc, schedule)

        self._emit(KernelEndEvent(kernel_name=kern.name))

    def _launch_warps(self, kern: Kernel, launch: LaunchConfig, args,
                      shared_alloc: Callable, schedule) -> None:
        """The per-warp reference loop: one context per scheduled warp."""
        for block_id, warp_id in schedule:
            ctx = WarpContext(launch=launch, block_id=block_id,
                              warp_id=warp_id, emit=self._emit,
                              shared_alloc=shared_alloc,
                              columnar=self.columnar)
            kern(ctx, *args)
            if self.columnar:
                batch = ctx.flush_columnar()
                if batch is not None:
                    self._emit(batch)

    def _launch_cohort(self, kern: Kernel, launch: LaunchConfig, args,
                       shared_alloc: Callable, schedule) -> None:
        """Execute all warps of *launch* as one cohort (plus sub-cohorts).

        The cohort starts as the whole schedule; when warps observably
        disagree (a :class:`CohortSplit` from a collapsed scalar) the
        attempt's memory writes are rolled back and each sub-cohort re-runs
        from the top.  Completed attempts commit their writes and yield the
        per-warp event payloads, which are finally emitted in schedule
        order — byte-identical to the per-warp loop.
        """
        fault = fault_injection.cohort_violation_for(self.launch_count - 1)
        if fault is not None:
            raise CohortEnvelopeError(
                f"injected cohort envelope violation for launch "
                f"{self.launch_count - 1} of {kern.name!r} "
                f"({fault.render()})")
        num = launch.total_warps
        block_ids = np.fromiter((b for b, _w in schedule), dtype=np.int64,
                                count=num)
        warp_ids = np.fromiter((w for _b, w in schedule), dtype=np.int64,
                               count=num)
        pending = [np.arange(num, dtype=np.int64)]
        payloads: Dict[int, tuple] = {}
        # Commits are deferred to launch success: every attempt's journal is
        # retained so an envelope violation raised after some sub-cohorts
        # already completed can still restore pre-launch memory exactly
        # (rollback in reverse application order) before the per-warp
        # fallback re-executes the whole launch.
        completed: List[WriteJournal] = []
        attempts = 0
        try:
            while pending:
                rows = pending.pop(0)
                attempts += 1
                if attempts > 2 * num + 8:
                    # A split always yields >= 2 strictly smaller groups, so
                    # a deterministic kernel executes at most 2*num - 1
                    # attempts.
                    raise CohortEnvelopeError(
                        f"cohort execution of {kern.name!r} did not "
                        f"converge after {attempts} attempts")
                journal = WriteJournal()
                ctx = CohortContext(
                    launch=launch, rows=rows, block_ids=block_ids[rows],
                    warp_ids=warp_ids[rows], shared_alloc=shared_alloc,
                    columnar=self.columnar, journal=journal,
                    step_budget=self.config.cohort_step_budget)
                try:
                    kern(ctx, *args)
                except CohortSplit as split:
                    journal.rollback()
                    pending = split.groups + pending
                    continue
                except BaseException:
                    journal.rollback()
                    raise
                completed.append(journal)
                payloads.update(ctx.replay_events())
        except BaseException:
            for journal in reversed(completed):
                journal.rollback()
            raise
        for journal in completed:
            journal.commit()
        for position in range(num):
            events, batch = payloads[position]
            for event in events:
                self._emit(event)
            if batch is not None:
                self._emit(batch)
