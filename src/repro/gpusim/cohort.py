"""Warp-cohort execution: every warp of a launch in one NumPy pass.

The reference interpreter (:class:`repro.gpusim.context.WarpContext`) runs
the Python kernel body once per warp over ``(32,)`` lane vectors.  For a
launch with W warps that means W passes through the body, and the Python /
NumPy dispatch overhead — not the arithmetic — dominates trace-recording
time (Table IV of the paper; see DESIGN.md §10).

:class:`CohortContext` runs the body **once per launch** over a
``(num_warps, 32)`` lane grid: row *i* of every lane value belongs to the
warp at schedule position *i* (so row order *is* schedule order, which makes
row-major NumPy semantics coincide with the per-warp memory-commit order).
The same structured-control DSL is interpreted with 2-D masks, and every
observable side effect is captured in an in-order record list that is
re-expanded into the exact per-warp event streams at launch retirement.

Sub-cohort splitting
--------------------
Only four DSL operations collapse lane values to a *Python scalar* —
``uniform``, ``any``, ``all`` and ``ballot`` — and they are therefore the
only points where warps of a cohort can observably disagree (a divergent
uniform branch or loop trip count always flows through one of them).  When
the participating warps disagree, the attempt raises :class:`CohortSplit`
carrying the warps partitioned by outcome; the device rolls back all
speculative memory writes (:class:`repro.gpusim.memory.WriteJournal`) and
re-runs each sub-cohort from the top.  Groups are strictly smaller than the
cohort that raised, so the recursion terminates; memory writes are only
committed for attempts that complete.  This mirrors how a warp scheduler
partitions warps that diverge on a uniform branch.

Equivalence envelope
--------------------
The cohort engine targets kernels whose warps are independent within one
launch (no warp reads memory another warp of the same launch wrote).  All
bundled workloads satisfy this — it is the usual CUDA contract for kernels
that do not synchronise across blocks.  Under that envelope the replayed
event streams are byte-identical to the per-warp loop (asserted by unit,
property and whole-workload equivalence tests).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import CohortEnvelopeError
from repro.gpusim.context import _BALLOT_WEIGHTS, SimtDivergenceError
from repro.gpusim.events import (
    BasicBlockEvent,
    MemoryAccessEvent,
    MemoryBatchEvent,
    SyncEvent,
)
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.memory import DeviceBuffer, MemorySpace, WriteJournal
from repro.gpusim.warp import WARP_SIZE, cohort_bool, cohort_vector

# Record tags.  The ``*_U`` variants are the *flat* fast path: while every
# warp of the cohort has a full active mask and has entered the same blocks
# the per-warp trace state (current label / visit / instruction ordinal) is
# a single scalar shared by all rows, so records need no per-row arrays.
_BB = 0
_SYNC = 1
_MEM = 2
_BB_U = 3
_SYNC_U = 4
_MEM_U = 5


class CohortSplit(Exception):
    """A cohort must be partitioned: warps disagreed on a collapsed scalar.

    ``groups`` holds the global schedule positions of each sub-cohort, in
    first-occurrence order of the disagreeing values; every group is sorted
    ascending and strictly smaller than the cohort that raised.
    """

    def __init__(self, groups: List[np.ndarray]) -> None:
        super().__init__(f"cohort diverged into {len(groups)} sub-cohorts")
        self.groups = groups


class CohortSharedView:
    """Per-warp view of a block-scoped ``__shared__`` allocation.

    The per-warp path hands kernels the block's :class:`DeviceBuffer`
    directly; a cohort spans several blocks, so ``k.shared`` returns this
    view mapping each row (warp) to its own block's buffer.
    """

    def __init__(self, name: str,
                 row_buffers: List[Optional[DeviceBuffer]]) -> None:
        self.name = name
        self._row_buffers = row_buffers

    @property
    def dtype(self):
        for buf in self._row_buffers:
            if buf is not None:
                return buf.data.dtype
        return np.int64

    def row_buffer(self, row: int) -> DeviceBuffer:
        buf = self._row_buffers[row]
        if buf is None:
            raise SimtDivergenceError(
                f"shared buffer {self.name!r} used by a warp that did not "
                "allocate it (k.shared was reached with the warp inactive)")
        return buf


class ReplicaBuffer:
    """Fused view of R same-shaped device buffers, one per replica slot.

    Replica-cohort batching executes R repetitions of a launch as extra
    rows of the lane grid; each repetition owns its own device buffers.
    This buffer concatenates the members' flat contents into one backing
    array so a row in replica slot *s* addresses element ``i`` at flat
    offset ``s * logical_elements + i`` — replicas stay fully isolated
    while sharing a single NumPy pass.  ``data`` mirrors
    :class:`DeviceBuffer` closely enough for the
    :class:`~repro.gpusim.memory.WriteJournal` (snapshot / rollback of
    ``.data``); addresses are recorded against each member's own base so
    the replayed event streams are byte-identical to serial runs.
    """

    def __init__(self, buffers: List[DeviceBuffer]) -> None:
        if not buffers:
            raise ValueError("ReplicaBuffer needs at least one member")
        first = buffers[0]
        self.buffers = buffers
        self.num_slots = len(buffers)
        self.logical_elements = int(first.data.size)
        self.itemsize = first.itemsize
        self.space = first.space
        self.label = first.label
        self.bases = np.fromiter((b.base for b in buffers), dtype=np.int64,
                                 count=len(buffers))
        self.data = np.concatenate([b.data.reshape(-1) for b in buffers])

    def check_bounds(self, indices) -> None:
        # bounds are in the *logical* element space, identical across
        # members: delegate so the error message names a real allocation
        self.buffers[0].check_bounds(indices)

    def writeback(self) -> None:
        """Copy each slot's region back into its member buffer."""
        n = self.logical_elements
        for slot, buf in enumerate(self.buffers):
            flat = buf.data.reshape(-1)
            flat[...] = self.data[slot * n:(slot + 1) * n]


class CohortBranchHandle:
    """Cohort counterpart of :class:`repro.gpusim.context.BranchHandle`."""

    def __init__(self, ctx: "CohortContext", cond: np.ndarray) -> None:
        self._ctx = ctx
        self._outer = ctx.active.copy()
        self._cond = cond

    def then(self, label: str) -> Iterator[None]:
        return self._arm(label, self._outer & self._cond)

    def otherwise(self, label: str) -> Iterator[None]:
        return self._arm(label, self._outer & ~self._cond)

    def _arm(self, label: str, taken: np.ndarray) -> Iterator[None]:
        ctx = self._ctx
        if not taken.any():
            return
        saved = ctx.active
        ctx._set_active(taken)
        try:
            ctx.block(label)
            yield None
        finally:
            ctx._set_active(saved)


class CohortContext:
    """Execution context of a warp cohort: the whole launch (or one
    sub-cohort of it) interpreted over a ``(G, 32)`` lane grid.

    Row *i* belongs to the warp at global schedule position ``rows[i]``;
    rows are ascending, so row order is schedule order.  The interface is
    the same structured-control DSL as :class:`WarpContext` — kernels that
    keep their NumPy shape-polymorphic (all bundled workloads do) run on
    either context unchanged.
    """

    def __init__(self, launch: LaunchConfig, rows: np.ndarray,
                 block_ids: np.ndarray, warp_ids: np.ndarray,
                 shared_alloc: Callable, columnar: bool,
                 journal: WriteJournal,
                 step_budget: Optional[int] = None,
                 replica_slots: Optional[np.ndarray] = None) -> None:
        self._launch = launch
        self._rows = np.asarray(rows, dtype=np.int64)
        num = int(self._rows.shape[0])
        self._num = num
        self._shape = (num, WARP_SIZE)
        self._block_ids = np.asarray(block_ids, dtype=np.int64)
        self._warp_ids = np.asarray(warp_ids, dtype=np.int64)
        self._block_id_col = self._block_ids.reshape(num, 1)
        self._warp_id_col = self._warp_ids.reshape(num, 1)
        self._shared_alloc = shared_alloc
        self._columnar = columnar
        self._journal = journal
        #: replica slot of each row (replica-cohort batching); ``None``
        #: for an ordinary single-execution cohort
        self._replica_slots = (None if replica_slots is None else
                               np.asarray(replica_slots, dtype=np.int64))
        #: runaway-kernel guard: basic-block entries this attempt may record
        #: before the launch is declared outside the envelope (None = off)
        self._step_budget = step_budget
        self._steps = 0

        self.lane = np.broadcast_to(
            np.arange(WARP_SIZE, dtype=np.int64), self._shape).copy()
        self._thread_in_block = self._warp_id_col * WARP_SIZE + self.lane
        self._exists = self._thread_in_block < launch.threads_per_block
        self._active = self._exists.copy()
        self._active_full = bool(self._active.all())
        self._all_rows = np.arange(num, dtype=np.int64)

        #: per-buffer hot-path state: id(buf) -> (flat view, base, itemsize,
        #: num_elements, space value, buf, replica offsets).  A buffer's
        #: backing array is only ever mutated in place (journal rollback
        #: included), so the flat view stays valid for the whole attempt.
        self._buf_state: Dict[int, tuple] = {}
        #: interned basic-block labels (cohort-wide id space)
        self._label_index: Dict[str, int] = {}
        self._labels: List[str] = []
        #: ordered side-effect records, re-expanded by :meth:`replay_events`
        self._records: List[tuple] = []

        # Flat fast path: while control flow has been full-cohort-uniform,
        # the per-warp trace state is one scalar per field.  The first
        # masked operation materialises per-row arrays.
        self._flat = self._active_full
        self._u_label = -1
        self._u_visit = 0
        self._u_instr = 0
        self._flat_counts: Dict[int, int] = {}
        if not self._flat:
            self._current_label = np.full(num, -1, dtype=np.int64)
            self._current_visit = np.zeros(num, dtype=np.int64)
            self._instr_ordinal = np.zeros(num, dtype=np.int64)
            self._visit_counts: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def launch(self) -> LaunchConfig:
        return self._launch

    @property
    def rows(self) -> np.ndarray:
        """Global schedule positions of this cohort's warps (ascending)."""
        return self._rows

    @property
    def num_warps(self) -> int:
        return self._num

    @property
    def block_id(self) -> np.ndarray:
        """Linearised block id, as a ``(G, 1)`` column (broadcasts over
        lanes exactly like the per-warp scalar does)."""
        return self._block_id_col

    @property
    def warp_id(self) -> np.ndarray:
        return self._warp_id_col

    @property
    def global_warp_id(self) -> np.ndarray:
        return (self._block_id_col * self._launch.warps_per_block
                + self._warp_id_col)

    @property
    def block_idx(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        gx, gy, _gz = self._launch.grid
        b = self._block_id_col
        return b % gx, (b // gx) % gy, b // (gx * gy)

    @property
    def block_dim(self) -> Tuple[int, int, int]:
        return self._launch.block

    @property
    def grid_dim(self) -> Tuple[int, int, int]:
        return self._launch.grid

    @property
    def active(self) -> np.ndarray:
        return self._active

    def _set_active(self, mask: np.ndarray) -> None:
        act = np.asarray(mask, dtype=bool) & self._exists
        self._active = act
        self._active_full = bool(act.all())

    def thread_idx(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        bx, by, _bz = self._launch.block
        t = self._thread_in_block
        return t % bx, (t // bx) % by, t // (bx * by)

    def global_tid(self) -> np.ndarray:
        return (self._block_id_col * self._launch.threads_per_block
                + self._thread_in_block)

    # ------------------------------------------------------------------
    # lane-value coercion
    # ------------------------------------------------------------------

    def _grid(self, value, dtype=None) -> np.ndarray:
        arr = np.asarray(value)
        if arr.shape != self._shape:
            return cohort_vector(value, self._num, dtype)
        if dtype is not None and arr.dtype != dtype:
            arr = arr.astype(dtype)
        return arr

    def _grid_bool(self, value) -> np.ndarray:
        arr = np.asarray(value)
        if arr.shape != self._shape:
            return cohort_bool(value, self._num)
        if arr.dtype != bool:
            arr = arr.astype(bool)
        return arr

    def _part_rows(self) -> np.ndarray:
        """Rows (warps) with at least one active lane: exactly the warps
        that would execute the current code region in the per-warp loop."""
        if self._active_full:
            return self._all_rows
        return np.flatnonzero(self._active.any(axis=1))

    def _materialize(self) -> None:
        """Expand the flat scalar trace state into per-row arrays."""
        num = self._num
        self._current_label = np.full(num, self._u_label, dtype=np.int64)
        self._current_visit = np.full(num, self._u_visit, dtype=np.int64)
        self._instr_ordinal = np.full(num, self._u_instr, dtype=np.int64)
        self._visit_counts = {
            lid: np.full(num, count, dtype=np.int64)
            for lid, count in self._flat_counts.items()}
        self._flat = False

    def _buf_view(self, buf) -> tuple:
        state = self._buf_state.get(id(buf))
        if state is None:
            if isinstance(buf, ReplicaBuffer):
                # each row indexes its own slot's region of the fused
                # backing array; addresses use the member's real base
                nelem = buf.logical_elements
                slots = self._replica_slots
                offs = (slots * nelem).reshape(self._num, 1)
                base = buf.bases[slots].reshape(self._num, 1)
                state = (buf.data.reshape(-1), base, buf.itemsize, nelem,
                         buf.space.value, buf, offs)
            else:
                data = buf.data
                state = (data.reshape(-1), buf.base, buf.itemsize,
                         data.size, buf.space.value, buf, None)
            self._buf_state[id(buf)] = state
        return state

    def _intern(self, label: str) -> int:
        lid = self._label_index.get(label)
        if lid is None:
            lid = len(self._labels)
            self._label_index[label] = lid
            self._labels.append(label)
        return lid

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------

    def block(self, label: str) -> None:
        if self._step_budget is not None:
            self._steps += 1
            if self._steps > self._step_budget:
                raise CohortEnvelopeError(
                    f"cohort attempt recorded more than "
                    f"{self._step_budget} basic-block steps at {label!r} — "
                    "runaway kernel; re-executing on the per-warp "
                    "reference engine")
        if self._flat and self._active_full:
            lid = self._intern(label)
            visit = self._flat_counts.get(lid, 0)
            self._flat_counts[lid] = visit + 1
            self._u_label = lid
            self._u_visit = visit
            self._u_instr = 0
            self._records.append((_BB_U, lid, visit))
            return
        if self._flat:
            self._materialize()
        active = self._active
        if self._active_full:
            part = self._all_rows
            counts_active = np.full(self._num, WARP_SIZE, dtype=np.int64)
        else:
            lane_counts = active.sum(axis=1)
            part = np.flatnonzero(lane_counts)
            if part.size == 0:
                raise SimtDivergenceError(
                    f"basic block {label!r} entered with no active lane")
            counts_active = lane_counts[part]
        lid = self._intern(label)
        counts = self._visit_counts.get(lid)
        if counts is None:
            counts = np.zeros(self._num, dtype=np.int64)
            self._visit_counts[lid] = counts
        visits = counts[part]
        counts[part] += 1
        self._current_label[part] = lid
        self._current_visit[part] = visits
        self._instr_ordinal[part] = 0
        self._records.append((_BB, part, lid, visits, counts_active))

    def branch(self, cond) -> CohortBranchHandle:
        return CohortBranchHandle(self, self._grid_bool(cond))

    def range_(self, label: str, start: int, stop: Optional[int] = None,
               step: int = 1) -> Iterator[int]:
        if stop is None:
            start, stop = 0, start
        for i in range(start, stop, step):
            self.block(label)
            yield i

    def while_(self, label: str, cond_fn: Callable[[], np.ndarray],
               max_iter: int = 1_000_000) -> Iterator[int]:
        outer = self._active
        live = outer.copy()
        iteration = 0
        try:
            while True:
                self._set_active(live)
                cond = self._grid_bool(cond_fn()) & live
                if not cond.any():
                    break
                if iteration >= max_iter:
                    raise SimtDivergenceError(
                        f"divergent loop {label!r} exceeded {max_iter} "
                        "iterations")
                live = cond
                self._set_active(live)
                self.block(label)
                yield iteration
                iteration += 1
        finally:
            self._set_active(outer)

    def _split_groups(self, part: np.ndarray,
                      values: np.ndarray) -> List[np.ndarray]:
        """Partition the cohort by the disagreeing per-warp *values*.

        Participating rows are grouped by value in first-occurrence order;
        rows with no active lane (warps that would not have executed this
        collapse in the per-warp loop) ride along with group 0 — they are
        unconstrained, and keeping them in the first group minimises the
        number of re-executions.  Each group is returned as ascending
        *global* schedule positions.
        """
        order: Dict[object, int] = {}
        buckets: List[List[int]] = []
        for i in range(part.shape[0]):
            value = values[i]
            key = value.item() if isinstance(value, np.generic) else value
            slot = order.get(key)
            if slot is None:
                order[key] = len(buckets)
                buckets.append([int(part[i])])
            else:
                buckets[slot].append(int(part[i]))
        part_set = set(int(r) for r in part)
        buckets[0].extend(r for r in range(self._num) if r not in part_set)
        groups = []
        for rows in buckets:
            local = np.asarray(sorted(rows), dtype=np.int64)
            groups.append(self._rows[local])
        return groups

    def uniform(self, values) -> int:
        vec = self._grid(values)
        active = self._active
        part = self._part_rows()
        if part.size == 0:
            raise SimtDivergenceError("uniform() with no active lane")
        firsts = []
        for r in part:
            row = vec[r] if self._active_full else vec[r][active[r]]
            first = row[0]
            if not (row == first).all():
                raise SimtDivergenceError(
                    "uniform() on a divergent value: "
                    f"{np.unique(row)!r}")
            firsts.append(first)
        collected = np.asarray(firsts)
        if (collected == collected[0]).all():
            return collected[0].item()
        raise CohortSplit(self._split_groups(part, collected))

    # ------------------------------------------------------------------
    # predication and warp intrinsics
    # ------------------------------------------------------------------

    def select(self, cond, if_true, if_false) -> np.ndarray:
        return np.where(self._grid_bool(cond), self._grid(if_true),
                        self._grid(if_false))

    def any(self, cond) -> bool:
        part = self._part_rows()
        if part.size == 0:
            return False
        row_any = (self._grid_bool(cond) & self._active).any(axis=1)[part]
        if row_any.all() or not row_any.any():
            return bool(row_any[0])
        raise CohortSplit(self._split_groups(part, row_any))

    def all(self, cond) -> bool:
        part = self._part_rows()
        if part.size == 0:
            return True
        row_all = (self._grid_bool(cond)
                   | ~self._active).all(axis=1)[part]
        if row_all.all() or not row_all.any():
            return bool(row_all[0])
        raise CohortSplit(self._split_groups(part, row_all))

    def ballot(self, cond) -> int:
        part = self._part_rows()
        if part.size == 0:
            return 0
        bits = (self._grid_bool(cond) & self._active).astype(np.uint64)
        votes = (bits @ _BALLOT_WEIGHTS)[part]
        if (votes == votes[0]).all():
            return int(votes[0])
        raise CohortSplit(self._split_groups(part, votes))

    def reduce_sum(self, values) -> np.ndarray:
        """Warp reduction, one value per warp as a ``(G, 1)`` column.

        Each row is reduced over its own compacted active lanes — the same
        1-D summation the per-warp path performs — so results are bit-exact
        against the reference even for floating-point inputs.
        """
        vec = self._grid(values)
        active = self._active
        out = [vec[r][active[r]].sum() for r in range(self._num)]
        return np.asarray(out).reshape(self._num, 1)

    def reduce_max(self, values) -> np.ndarray:
        return self._reduce_extreme(values, "reduce_max", np.ndarray.max)

    def reduce_min(self, values) -> np.ndarray:
        return self._reduce_extreme(values, "reduce_min", np.ndarray.min)

    def _reduce_extreme(self, values, name: str, op) -> np.ndarray:
        vec = self._grid(values)
        active = self._active
        if not active.any():
            raise SimtDivergenceError(f"{name}() with no active lane")
        out = np.empty(self._num, dtype=vec.dtype)
        for r in range(self._num):
            chosen = vec[r][active[r]]
            # A row with no active lane would not have executed this call
            # in the per-warp loop: its result is unobservable, fill with
            # an arbitrary in-dtype value.
            out[r] = op(chosen) if chosen.size else vec[r, 0]
        return out.reshape(self._num, 1)

    def shfl(self, values, src_lane: int) -> np.ndarray:
        vec = self._grid(values)
        return np.repeat(vec[:, src_lane:src_lane + 1], WARP_SIZE, axis=1)

    def shfl_up(self, values, delta: int) -> np.ndarray:
        vec = self._grid(values)
        out = vec.copy()
        if 0 < delta < WARP_SIZE:
            out[:, delta:] = vec[:, :-delta]
        return out

    def shfl_down(self, values, delta: int) -> np.ndarray:
        vec = self._grid(values)
        out = vec.copy()
        if 0 < delta < WARP_SIZE:
            out[:, :-delta] = vec[:, delta:]
        return out

    def shfl_xor(self, values, mask: int) -> np.ndarray:
        vec = self._grid(values)
        return vec[:, np.arange(WARP_SIZE) ^ (mask & (WARP_SIZE - 1))]

    def syncthreads(self) -> None:
        if self._flat and self._active_full:
            self._records.append((_SYNC_U,))
            return
        part = self._part_rows()
        if part.size == 0:
            return
        self._records.append((_SYNC, part))

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------

    def shared(self, name: str, shape, dtype=np.int64) -> CohortSharedView:
        """Per-block shared memory, allocated lazily in schedule order.

        Only warps that reach this call with an active lane allocate (their
        block's) buffer — exactly the warps that would have called
        ``shared`` in the per-warp loop — and ascending row order matches
        the per-warp allocation order.
        """
        part = self._part_rows()
        row_buffers: List[Optional[DeviceBuffer]] = [None] * self._num
        if self._replica_slots is None:
            for r in part:
                row_buffers[r] = self._shared_alloc(
                    int(self._block_ids[r]), name, shape, dtype)
        else:
            # replica batching: each slot allocates from its own device so
            # per-device allocation sequences match the serial runs
            for r in part:
                row_buffers[r] = self._shared_alloc(
                    int(self._replica_slots[r]), int(self._block_ids[r]),
                    name, shape, dtype)
        return CohortSharedView(name=name, row_buffers=row_buffers)

    def load(self, buf, index,
             space: Optional[MemorySpace] = None) -> np.ndarray:
        if isinstance(buf, CohortSharedView):
            return self._shared_load(buf, index, space)
        idx = self._grid(index, np.int64)
        flat, base, itemsize, nelem, buf_space, _, offs = self._buf_view(buf)
        space_value = buf_space if space is None else space.value
        if self._active_full:
            if idx.min() < 0 or idx.max() >= nelem:
                buf.check_bounds(idx)
            addresses = base + idx * itemsize
            self._record_mem_full(space_value, False, addresses)
            return flat[idx] if offs is None else flat[idx + offs]
        active = self._active
        if not active.any():
            return np.zeros(self._shape, dtype=flat.dtype)
        if self._flat:
            self._materialize()
        part = np.flatnonzero(active.any(axis=1))
        if offs is None:
            sel = idx[active]
            buf.check_bounds(sel)
            addresses = [base + idx[r][active[r]] * itemsize for r in part]
        else:
            buf.check_bounds(idx[active])
            sel = (idx + offs)[active]
            addresses = [int(base[r, 0]) + idx[r][active[r]] * itemsize
                         for r in part]
        self._record_mem(part, space_value, False, addresses)
        out = np.zeros(self._shape, dtype=flat.dtype)
        out[active] = flat[sel]
        return out

    def store(self, buf, index, values,
              space: Optional[MemorySpace] = None) -> None:
        if isinstance(buf, CohortSharedView):
            self._shared_store(buf, index, values, space)
            return
        idx = self._grid(index, np.int64)
        vals = self._grid(values)
        flat, base, itemsize, nelem, buf_space, _, offs = self._buf_view(buf)
        space_value = buf_space if space is None else space.value
        if self._active_full:
            if idx.min() < 0 or idx.max() >= nelem:
                buf.check_bounds(idx)
            addresses = base + idx * itemsize
            self._record_mem_full(space_value, True, addresses)
            self._journal.capture(buf)
            # Row-major fancy assignment: rows ascend in schedule order and
            # lanes ascend within a row, so the last (highest) writer wins —
            # the per-warp loop's commit order exactly.  Replica rows write
            # disjoint slot regions, so slot-major row order preserves each
            # replica's own commit order.
            if offs is None:
                flat[idx] = vals.astype(flat.dtype)
            else:
                flat[idx + offs] = vals.astype(flat.dtype)
            return
        active = self._active
        if not active.any():
            return
        if self._flat:
            self._materialize()
        part = np.flatnonzero(active.any(axis=1))
        if offs is None:
            sel = idx[active]
            buf.check_bounds(sel)
            addresses = [base + idx[r][active[r]] * itemsize for r in part]
        else:
            buf.check_bounds(idx[active])
            sel = (idx + offs)[active]
            addresses = [int(base[r, 0]) + idx[r][active[r]] * itemsize
                         for r in part]
        self._record_mem(part, space_value, True, addresses)
        self._journal.capture(buf)
        flat[sel] = vals[active].astype(flat.dtype)

    def atomic_add(self, buf, index, values) -> None:
        if isinstance(buf, CohortSharedView):
            self._shared_atomic_add(buf, index, values)
            return
        idx = self._grid(index, np.int64)
        vals = self._grid(values)
        flat, base, itemsize, nelem, buf_space, _, offs = self._buf_view(buf)
        if self._active_full:
            if idx.min() < 0 or idx.max() >= nelem:
                buf.check_bounds(idx)
            addresses = base + idx * itemsize
            self._record_mem_full(buf_space, True, addresses)
            self._journal.capture(buf)
            # np.add.at applies contributions unbuffered in C (row-major)
            # order: schedule order across warps, lane order within — the
            # same accumulation order as the per-warp loop, which keeps
            # float atomics bit-exact.  Replica slot regions are disjoint,
            # so per-slot accumulation order is preserved as well.
            if offs is None:
                np.add.at(flat, idx, vals.astype(flat.dtype))
            else:
                np.add.at(flat, idx + offs, vals.astype(flat.dtype))
            return
        active = self._active
        if not active.any():
            return
        if self._flat:
            self._materialize()
        part = np.flatnonzero(active.any(axis=1))
        if offs is None:
            sel = idx[active]
            buf.check_bounds(sel)
            addresses = [base + idx[r][active[r]] * itemsize for r in part]
        else:
            buf.check_bounds(idx[active])
            sel = (idx + offs)[active]
            addresses = [int(base[r, 0]) + idx[r][active[r]] * itemsize
                         for r in part]
        self._record_mem(part, buf_space, True, addresses)
        self._journal.capture(buf)
        np.add.at(flat, sel, vals[active].astype(flat.dtype))

    # -- shared-memory variants (per-row buffers) ----------------------

    def _shared_load(self, view: CohortSharedView, index,
                     space: Optional[MemorySpace]) -> np.ndarray:
        if self._flat:
            self._materialize()
        idx = self._grid(index, np.int64)
        active = self._active
        out = np.zeros(self._shape, dtype=view.dtype)
        part_list, addresses, chosen = [], [], None
        for r in range(self._num):
            act = active[r]
            if not act.any():
                continue
            buf = view.row_buffer(r)
            chosen = chosen or buf
            sel = idx[r][act]
            buf.check_bounds(sel)
            addresses.append(buf.base + sel * buf.itemsize)
            part_list.append(r)
            out[r][act] = buf.data.reshape(-1)[sel]
        if part_list:
            space_value = (space if space is not None else chosen.space).value
            self._record_mem(np.asarray(part_list, dtype=np.int64),
                             space_value, False, addresses)
        return out

    def _shared_store(self, view: CohortSharedView, index, values,
                      space: Optional[MemorySpace]) -> None:
        if self._flat:
            self._materialize()
        idx = self._grid(index, np.int64)
        vals = self._grid(values)
        active = self._active
        part_list, addresses, chosen = [], [], None
        for r in range(self._num):
            act = active[r]
            if not act.any():
                continue
            buf = view.row_buffer(r)
            chosen = chosen or buf
            sel = idx[r][act]
            buf.check_bounds(sel)
            addresses.append(buf.base + sel * buf.itemsize)
            part_list.append(r)
            self._journal.capture(buf)
            buf.data.reshape(-1)[sel] = vals[r][act].astype(buf.data.dtype)
        if part_list:
            space_value = (space if space is not None else chosen.space).value
            self._record_mem(np.asarray(part_list, dtype=np.int64),
                             space_value, True, addresses)

    def _shared_atomic_add(self, view: CohortSharedView, index,
                           values) -> None:
        if self._flat:
            self._materialize()
        idx = self._grid(index, np.int64)
        vals = self._grid(values)
        active = self._active
        part_list, addresses, chosen = [], [], None
        for r in range(self._num):
            act = active[r]
            if not act.any():
                continue
            buf = view.row_buffer(r)
            chosen = chosen or buf
            sel = idx[r][act]
            buf.check_bounds(sel)
            addresses.append(buf.base + sel * buf.itemsize)
            part_list.append(r)
            self._journal.capture(buf)
            np.add.at(buf.data.reshape(-1), sel,
                      vals[r][act].astype(buf.data.dtype))
        if part_list:
            self._record_mem(np.asarray(part_list, dtype=np.int64),
                             chosen.space.value, True, addresses)

    # -- record plumbing ----------------------------------------------

    def _record_mem_full(self, space_value: int, is_store: bool,
                         addresses: np.ndarray) -> None:
        if self._flat:
            if self._u_label < 0:
                raise SimtDivergenceError(
                    "memory access outside any basic block: "
                    "call k.block() first")
            self._records.append((_MEM_U, self._u_label, self._u_visit,
                                  self._u_instr, space_value, is_store,
                                  addresses))
            self._u_instr += 1
            return
        part = self._all_rows
        labels = self._current_label[part]
        if labels.min() < 0:
            raise SimtDivergenceError(
                "memory access outside any basic block: call k.block() first")
        self._records.append((_MEM, part, labels, self._current_visit[part],
                              self._instr_ordinal[part], space_value,
                              is_store, addresses))
        self._instr_ordinal += 1

    def _record_mem(self, part: np.ndarray, space_value: int,
                    is_store: bool,
                    addresses: List[np.ndarray]) -> None:
        labels = self._current_label[part]
        if labels.min() < 0:
            raise SimtDivergenceError(
                "memory access outside any basic block: call k.block() first")
        self._records.append((_MEM, part, labels, self._current_visit[part],
                              self._instr_ordinal[part], space_value,
                              is_store, addresses))
        self._instr_ordinal[part] += 1

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------

    def replay_events(self) -> Dict[int, tuple]:
        """Re-expand the record list into per-warp event streams.

        Returns ``{global_schedule_position: (events, batch)}`` for every
        row of the cohort.  ``events`` is the warp's in-order list of
        :class:`BasicBlockEvent` / :class:`SyncEvent` (plus
        :class:`MemoryAccessEvent` when not columnar); ``batch`` is the
        warp's single :class:`MemoryBatchEvent` (columnar mode, None when
        the warp issued no memory instruction).  Emitting row streams in
        schedule order reproduces the per-warp loop's global event stream
        byte for byte.
        """
        num = self._num
        labels = self._labels
        block_ids = self._block_ids
        warp_ids = self._warp_ids
        columnar = self._columnar
        events: List[List] = [[] for _ in range(num)]
        if columnar:
            col_label_index: List[Dict[str, int]] = [{} for _ in range(num)]
            col_labels: List[List[str]] = [[] for _ in range(num)]
            col_rows: List[List[tuple]] = [[] for _ in range(num)]
            col_addresses: List[List[np.ndarray]] = [[] for _ in range(num)]
            # while only uniform memory records have been replayed, every
            # row's label table is identical, so uniform records can share
            # one interning step and one row tuple across all rows
            shared_tables = num > 0

        def add_mem(r: int, label: str, visit: int, instr: int,
                    space_value: int, is_store: bool,
                    addresses: np.ndarray) -> None:
            if columnar:
                lidx = col_label_index[r].get(label)
                if lidx is None:
                    lidx = len(col_labels[r])
                    col_label_index[r][label] = lidx
                    col_labels[r].append(label)
                col_rows[r].append((lidx, visit, instr, space_value,
                                    is_store))
                col_addresses[r].append(addresses)
            else:
                events[r].append(MemoryAccessEvent.from_array(
                    block_id=int(block_ids[r]), warp_id=int(warp_ids[r]),
                    label=label, visit=visit, instr=instr,
                    space=MemorySpace(space_value), is_store=is_store,
                    addresses=addresses))

        for record in self._records:
            tag = record[0]
            if tag == _BB_U:
                _, lid, visit = record
                label = labels[lid]
                for r in range(num):
                    events[r].append(BasicBlockEvent(
                        block_id=int(block_ids[r]),
                        warp_id=int(warp_ids[r]), label=label, visit=visit,
                        active_lanes=WARP_SIZE))
            elif tag == _MEM_U:
                _, lid, visit, instr, space_value, is_store, addrs = record
                label = labels[lid]
                if columnar and shared_tables:
                    lidx = col_label_index[0].get(label)
                    if lidx is None:
                        lidx = len(col_labels[0])
                        for r in range(num):
                            col_label_index[r][label] = lidx
                            col_labels[r].append(label)
                    row = (lidx, visit, instr, space_value, is_store)
                    for r in range(num):
                        col_rows[r].append(row)
                        col_addresses[r].append(addrs[r])
                else:
                    for r in range(num):
                        add_mem(r, label, visit, instr, space_value,
                                is_store, addrs[r])
            elif tag == _BB:
                _, part, lid, visits, counts = record
                label = labels[lid]
                for i in range(part.shape[0]):
                    r = int(part[i])
                    events[r].append(BasicBlockEvent(
                        block_id=int(block_ids[r]),
                        warp_id=int(warp_ids[r]), label=label,
                        visit=int(visits[i]),
                        active_lanes=int(counts[i])))
            elif tag == _MEM:
                (_, part, lids, visits, instrs, space_value, is_store,
                 addrs) = record
                if columnar:
                    # member rows intern labels the others do not see; the
                    # per-row tables may diverge from here on
                    shared_tables = False
                for i in range(part.shape[0]):
                    r = int(part[i])
                    add_mem(r, labels[int(lids[i])], int(visits[i]),
                            int(instrs[i]), space_value, is_store, addrs[i])
            elif tag == _SYNC_U:
                for r in range(num):
                    events[r].append(SyncEvent(
                        block_id=int(block_ids[r]),
                        warp_id=int(warp_ids[r])))
            else:  # _SYNC
                _, part = record
                for i in range(part.shape[0]):
                    r = int(part[i])
                    events[r].append(SyncEvent(
                        block_id=int(block_ids[r]),
                        warp_id=int(warp_ids[r])))

        payloads: Dict[int, tuple] = {}
        for r in range(num):
            batch = None
            if columnar and col_rows[r]:
                label_ids, visits, instrs, spaces, stores = zip(*col_rows[r])
                chunks = col_addresses[r]
                sizes = np.fromiter((chunk.shape[0] for chunk in chunks),
                                    dtype=np.int64, count=len(chunks))
                extents = np.zeros(sizes.size + 1, dtype=np.int64)
                np.cumsum(sizes, out=extents[1:])
                batch = MemoryBatchEvent(
                    block_id=int(block_ids[r]), warp_id=int(warp_ids[r]),
                    labels=tuple(col_labels[r]),
                    label_ids=np.asarray(label_ids, dtype=np.int32),
                    visits=np.asarray(visits, dtype=np.int32),
                    instrs=np.asarray(instrs, dtype=np.int32),
                    spaces=np.asarray(spaces, dtype=np.uint8),
                    is_stores=np.asarray(stores, dtype=bool),
                    addresses=np.concatenate(chunks),
                    extents=extents)
            payloads[int(self._rows[r])] = (events[r], batch)
        return payloads
