"""Kernel objects and launch geometry.

A :class:`Kernel` wraps a Python function written against the warp-level DSL
(:class:`repro.gpusim.context.WarpContext`).  :class:`LaunchConfig` models
CUDA's ``<<<grid, block>>>`` geometry, including the padding of the last warp
when the block size is not a multiple of 32.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Tuple, Union

from repro.errors import ConfigError
from repro.gpusim.warp import WARP_SIZE

Dim3 = Tuple[int, int, int]


def _as_dim3(dim: Union[int, Tuple[int, ...]]) -> Dim3:
    """Normalise an int or partial tuple to a 3-tuple, CUDA style."""
    if isinstance(dim, int):
        dims = (dim, 1, 1)
    else:
        parts = tuple(int(d) for d in dim)
        if not 1 <= len(parts) <= 3:
            raise ConfigError(f"dim3 takes 1-3 components, got {parts!r}")
        dims = parts + (1,) * (3 - len(parts))
    if any(d < 1 for d in dims):
        raise ConfigError(f"dim3 components must be >= 1, got {dims!r}")
    return dims  # type: ignore[return-value]


@dataclass(frozen=True)
class LaunchConfig:
    """Grid/block geometry of one kernel launch."""

    grid: Dim3
    block: Dim3

    @staticmethod
    def create(grid: Union[int, Tuple[int, ...]],
               block: Union[int, Tuple[int, ...]]) -> "LaunchConfig":
        return LaunchConfig(grid=_as_dim3(grid), block=_as_dim3(block))

    @property
    def num_blocks(self) -> int:
        gx, gy, gz = self.grid
        return gx * gy * gz

    @property
    def threads_per_block(self) -> int:
        bx, by, bz = self.block
        return bx * by * bz

    @property
    def warps_per_block(self) -> int:
        return math.ceil(self.threads_per_block / WARP_SIZE)

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block

    @property
    def total_warps(self) -> int:
        return self.num_blocks * self.warps_per_block

    def block_index(self, linear_block_id: int) -> Dim3:
        """The 3-D block index of a linearised block id (x fastest)."""
        gx, gy, _gz = self.grid
        x = linear_block_id % gx
        y = (linear_block_id // gx) % gy
        z = linear_block_id // (gx * gy)
        return (x, y, z)

    def thread_index(self, linear_thread_in_block: int) -> Dim3:
        """The 3-D thread index of a linearised in-block thread id."""
        bx, by, _bz = self.block
        x = linear_thread_in_block % bx
        y = (linear_thread_in_block // bx) % by
        z = linear_thread_in_block // (bx * by)
        return (x, y, z)


@dataclass(frozen=True)
class Kernel:
    """A device function: a name plus a warp-level body.

    The body is called once per warp with a
    :class:`~repro.gpusim.context.WarpContext` followed by the launch
    arguments — or, on a cohort-enabled device, once per *launch* with a
    :class:`~repro.gpusim.cohort.CohortContext` covering every warp.

    ``cohort=False`` opts a kernel out of cohort execution (it always runs
    through the per-warp reference loop) — the escape hatch for kernel
    bodies with cross-warp memory dependencies inside a single launch,
    which the cohort engine does not model.
    """

    name: str
    body: Callable
    cohort: bool = True

    def __call__(self, ctx, *args):
        return self.body(ctx, *args)


def kernel(name: str = "", cohort: bool = True) -> Callable[[Callable], Kernel]:
    """Decorator turning a warp-level function into a :class:`Kernel`.

    >>> @kernel()
    ... def saxpy(k, a, x, y, out):
    ...     ...

    Pass ``cohort=False`` to pin the kernel to the per-warp execution loop.
    """

    def decorate(fn: Callable) -> Kernel:
        return Kernel(name=name or fn.__name__, body=fn, cohort=cohort)

    return decorate
