"""Device memory model: spaces, buffers, and a base-address allocator.

The Owl paper's host tracer records ``cudaMalloc`` call sites (base address and
size) precisely because the absolute addresses returned by the allocator
depend on memory layout and, with ASLR enabled, on a per-process random slide.
This module reproduces both effects:

* :class:`MemoryAllocator` hands out monotonically increasing base addresses
  with CUDA-like 256-byte alignment, optionally offset by a random ASLR slide;
* :class:`DeviceBuffer` couples an :class:`Allocation` with backing storage
  (a NumPy array) so kernels can load/store element-wise;
* :class:`MemorySpace` mirrors the nine NVBit memory-space categories listed
  in footnote 4 of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

#: CUDA's documented allocation alignment for ``cudaMalloc``.
ALLOCATION_ALIGNMENT = 256

#: Default base of the simulated global-memory arena (arbitrary but stable,
#: mimicking a typical UVA address).
DEFAULT_HEAP_BASE = 0x7F00_0000_0000

#: Maximum random ASLR slide, in bytes.  Real GPU ASLR randomises the
#: allocation base; 2**24 gives plenty of entropy for the tests.
ASLR_SLIDE_RANGE = 1 << 24


class MemorySpace(enum.Enum):
    """Memory-space categories, matching NVBit's classification.

    The paper (footnote 4) categorises accesses into exactly these groups.
    """

    NONE = 0
    LOCAL = 1
    GENERIC = 2
    GLOBAL = 3
    SHARED = 4
    CONSTANT = 5
    GLOBAL_TO_SHARED = 6
    SURFACE = 7
    TEXTURE = 8


@dataclass(frozen=True)
class Allocation:
    """A single device allocation: the unit of address normalisation.

    Owl's host tracer converts raw addresses into ``(allocation, offset)``
    pairs so that layout and ASLR noise do not masquerade as leakage.
    """

    alloc_id: int
    base: int
    size: int
    space: MemorySpace
    label: str

    def contains(self, address: int) -> bool:
        """Return True when *address* falls inside this allocation."""
        return self.base <= address < self.base + self.size

    @property
    def end(self) -> int:
        return self.base + self.size


class AllocationError(Exception):
    """Raised for invalid allocation or address-resolution requests."""


class MemoryAllocator:
    """Bump allocator for the simulated device address space.

    Addresses are deterministic for a given allocation sequence unless ASLR
    is enabled, in which case the whole arena is slid by a random amount at
    construction (or :meth:`reset`) time — the behaviour Owl must neutralise
    by disabling ASLR and normalising to offsets.
    """

    def __init__(self, aslr: bool = False, seed: Optional[int] = None,
                 heap_base: int = DEFAULT_HEAP_BASE) -> None:
        self._aslr = aslr
        self._heap_base = heap_base
        self._rng = np.random.default_rng(seed)
        self._next: int = 0
        self._allocations: List[Allocation] = []
        self._next_id = 0
        self._lookup_cache: Optional[Tuple] = None
        self.reset()

    @property
    def aslr(self) -> bool:
        return self._aslr

    @property
    def allocations(self) -> Tuple[Allocation, ...]:
        return tuple(self._allocations)

    def reset(self) -> None:
        """Start a fresh address space (new ASLR slide if enabled)."""
        slide = 0
        if self._aslr:
            # Keep the slide aligned so allocation bases remain aligned.
            slide = int(self._rng.integers(0, ASLR_SLIDE_RANGE))
            slide -= slide % ALLOCATION_ALIGNMENT
        self._next = self._heap_base + slide
        self._allocations = []
        self._next_id = 0
        self._lookup_cache = None

    def allocate(self, size: int, space: MemorySpace = MemorySpace.GLOBAL,
                 label: str = "") -> Allocation:
        """Reserve *size* bytes and return the :class:`Allocation`."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        base = self._next
        aligned = size + (-size % ALLOCATION_ALIGNMENT)
        self._next = base + aligned
        alloc = Allocation(alloc_id=self._next_id, base=base, size=size,
                           space=space, label=label or f"alloc{self._next_id}")
        self._next_id += 1
        self._allocations.append(alloc)
        self._lookup_cache = None
        return alloc

    def resolve(self, address: int) -> Tuple[Allocation, int]:
        """Map a raw *address* back to ``(allocation, offset)``.

        This is the primitive Owl's host tracer uses to normalise traces.
        """
        for alloc in self._allocations:
            if alloc.contains(address):
                return alloc, address - alloc.base
        raise AllocationError(f"address {address:#x} is not inside any allocation")

    def _lookup_table(self) -> Tuple[np.ndarray, np.ndarray, List[Allocation]]:
        """Base-sorted ``(bases, ends, allocations)`` arrays for binary search.

        Rebuilt lazily after :meth:`allocate`/:meth:`reset` invalidate it;
        the bump allocator hands out non-overlapping ranges, so sorting by
        base yields a proper interval table.
        """
        if self._lookup_cache is None:
            allocs = sorted(self._allocations, key=lambda a: a.base)
            bases = np.array([a.base for a in allocs], dtype=np.int64)
            ends = np.array([a.end for a in allocs], dtype=np.int64)
            self._lookup_cache = (bases, ends, allocs)
        return self._lookup_cache

    def resolve_batch(self, addresses: np.ndarray
                      ) -> Tuple[List[Allocation], np.ndarray, np.ndarray]:
        """Vectorised :meth:`resolve` over a whole address array.

        Returns ``(allocations, alloc_indices, offsets)`` where
        ``allocations[alloc_indices[i]]`` contains ``addresses[i]`` at byte
        offset ``offsets[i]``.  Raises :class:`AllocationError` for the first
        address outside every allocation, exactly like the scalar path.
        """
        addrs = np.ascontiguousarray(addresses, dtype=np.int64)
        bases, ends, allocs = self._lookup_table()
        if bases.size == 0:
            if addrs.size == 0:
                return allocs, np.empty(0, dtype=np.int64), addrs
            raise AllocationError(
                f"address {int(addrs[0]):#x} is not inside any allocation")
        indices = np.searchsorted(bases, addrs, side="right") - 1
        clipped = np.maximum(indices, 0)
        invalid = (indices < 0) | (addrs >= ends[clipped])
        if invalid.any():
            bad = int(addrs[invalid][0])
            raise AllocationError(
                f"address {bad:#x} is not inside any allocation")
        return allocs, clipped, addrs - bases[clipped]


@dataclass
class DeviceBuffer:
    """An allocation plus its backing storage.

    Kernels index buffers element-wise; the recorded trace addresses are
    ``base + index * itemsize`` so that the data-flow histograms in the
    analysis see byte addresses, exactly as NVBit reports them.
    """

    allocation: Allocation
    data: np.ndarray

    @property
    def base(self) -> int:
        return self.allocation.base

    @property
    def itemsize(self) -> int:
        return int(self.data.itemsize)

    @property
    def num_elements(self) -> int:
        return int(self.data.size)

    @property
    def space(self) -> MemorySpace:
        return self.allocation.space

    @property
    def label(self) -> str:
        return self.allocation.label

    def addresses_for(self, indices: np.ndarray) -> np.ndarray:
        """Byte addresses touched by element *indices*."""
        return self.base + np.asarray(indices, dtype=np.int64) * self.itemsize

    def check_bounds(self, indices: np.ndarray) -> None:
        indices = np.asarray(indices)
        if indices.size == 0:
            return
        low = int(indices.min())
        high = int(indices.max())
        if low < 0 or high >= self.num_elements:
            raise AllocationError(
                f"out-of-bounds access to {self.label!r}: "
                f"indices in [{low}, {high}] but buffer has "
                f"{self.num_elements} elements")


class WriteJournal:
    """Copy-on-first-write snapshots of device buffers.

    The warp-cohort engine executes a whole launch speculatively: when the
    cohort has to split (warps disagree on a value that must collapse to one
    Python scalar) the attempt is abandoned and each sub-cohort re-executes
    from the top.  Every buffer mutated during the attempt is snapshotted
    here before its first write, so :meth:`rollback` can restore the
    pre-launch contents exactly.  Allocations are *not* journalled —
    shared-memory allocation is idempotent across retries by construction.
    """

    def __init__(self) -> None:
        self._saved: Dict[int, Tuple[DeviceBuffer, np.ndarray]] = {}

    def capture(self, buf: DeviceBuffer) -> None:
        """Snapshot *buf* unless this journal already holds it."""
        key = id(buf)
        if key not in self._saved:
            self._saved[key] = (buf, buf.data.copy())

    def rollback(self) -> None:
        """Restore every captured buffer to its snapshot."""
        for buf, snapshot in self._saved.values():
            buf.data[...] = snapshot
        self._saved.clear()

    def commit(self) -> None:
        """Drop the snapshots (the speculative writes become permanent)."""
        self._saved.clear()


class DeviceMemory:
    """The device's memory subsystem: an allocator plus live buffers."""

    def __init__(self, aslr: bool = False, seed: Optional[int] = None) -> None:
        self._allocator = MemoryAllocator(aslr=aslr, seed=seed)
        self._buffers: Dict[int, DeviceBuffer] = {}

    @property
    def allocator(self) -> MemoryAllocator:
        return self._allocator

    @property
    def buffers(self) -> Tuple[DeviceBuffer, ...]:
        return tuple(self._buffers.values())

    def reset(self) -> None:
        """Free everything and restart the address space."""
        self._allocator.reset()
        self._buffers = {}

    def alloc(self, shape, dtype=np.int64,
              space: MemorySpace = MemorySpace.GLOBAL,
              label: str = "") -> DeviceBuffer:
        """Allocate a zero-initialised buffer of *shape* × *dtype*."""
        data = np.zeros(shape, dtype=dtype)
        allocation = self._allocator.allocate(max(1, data.nbytes), space=space,
                                              label=label)
        buf = DeviceBuffer(allocation=allocation, data=data)
        self._buffers[allocation.alloc_id] = buf
        return buf

    def alloc_like(self, array: np.ndarray,
                   space: MemorySpace = MemorySpace.GLOBAL,
                   label: str = "") -> DeviceBuffer:
        """Allocate a buffer initialised with a copy of *array*."""
        buf = self.alloc(array.shape, dtype=array.dtype, space=space, label=label)
        buf.data[...] = array
        return buf

    def buffer_for(self, alloc_id: int) -> DeviceBuffer:
        try:
            return self._buffers[alloc_id]
        except KeyError:
            raise AllocationError(f"unknown allocation id {alloc_id}") from None

    def resolve(self, address: int) -> Tuple[Allocation, int]:
        return self._allocator.resolve(address)

    def resolve_batch(self, addresses: np.ndarray
                      ) -> Tuple[List[Allocation], np.ndarray, np.ndarray]:
        return self._allocator.resolve_batch(addresses)
