"""Trace events emitted by the simulator.

These events are the simulator's externally observable behaviour and the
vocabulary of the NVBit-like tracing layer (:mod:`repro.tracing`):

* :class:`KernelBeginEvent` / :class:`KernelEndEvent` bracket one kernel
  launch;
* :class:`BasicBlockEvent` is sent when a *warp* enters a basic block — the
  paper records warp-level control flow because predicated execution makes
  per-thread control flow within a warp unobservable;
* :class:`MemoryAccessEvent` carries the byte addresses touched by the active
  lanes of one memory instruction, together with the NVBit memory-space type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.gpusim.memory import MemorySpace


@dataclass(frozen=True)
class TraceEvent:
    """Base class for all simulator trace events."""


@dataclass(frozen=True)
class KernelBeginEvent(TraceEvent):
    """A kernel launch is starting."""

    kernel_name: str
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    total_threads: int
    num_warps: int


@dataclass(frozen=True)
class KernelEndEvent(TraceEvent):
    """The matching end of a :class:`KernelBeginEvent`."""

    kernel_name: str


@dataclass(frozen=True)
class BasicBlockEvent(TraceEvent):
    """A warp entered basic block *label*.

    ``visit`` is the number of previous entries of this warp into the same
    block (so loop iterations are distinguishable), matching the per-visit
    memory record indexing of the paper's A-DCFG nodes.
    ``active_lanes`` is the number of lanes active on entry.
    """

    block_id: int
    warp_id: int
    label: str
    visit: int
    active_lanes: int


@dataclass(frozen=True)
class MemoryAccessEvent(TraceEvent):
    """One memory instruction executed by the active lanes of a warp.

    ``instr`` is the ordinal of the memory instruction within the current
    basic-block visit; together with ``label`` and ``visit`` it identifies
    the A-DCFG memory record slot ``m_j`` of the paper.
    ``addresses`` holds the byte addresses of the active lanes only.
    """

    block_id: int
    warp_id: int
    label: str
    visit: int
    instr: int
    space: MemorySpace
    is_store: bool
    addresses: Tuple[int, ...]

    @staticmethod
    def from_array(block_id: int, warp_id: int, label: str, visit: int,
                   instr: int, space: MemorySpace, is_store: bool,
                   addresses: np.ndarray) -> "MemoryAccessEvent":
        return MemoryAccessEvent(
            block_id=block_id, warp_id=warp_id, label=label, visit=visit,
            instr=instr, space=space, is_store=is_store,
            addresses=tuple(int(a) for a in addresses))


@dataclass(frozen=True)
class MemoryBatchEvent(TraceEvent):
    """All memory instructions of one warp, in columnar form.

    The columnar fast path (``columnar=True``) replaces the per-instruction
    :class:`MemoryAccessEvent` stream with a single batch per warp, emitted
    at warp retirement — the same move MicroWalk makes from per-event
    callbacks to bulk trace preprocessing.  One batch carries every memory
    instruction the warp executed, as parallel arrays indexed by instruction:

    * ``labels`` is the warp's interned basic-block label table and
      ``label_ids[i]`` indexes into it;
    * ``visits[i]`` / ``instrs[i]`` locate the A-DCFG record slot exactly as
      the corresponding :class:`MemoryAccessEvent` fields would;
    * ``spaces[i]`` / ``is_stores[i]`` carry the NVBit memory-space tag value
      and load/store flag;
    * ``addresses`` is the concatenation of all instructions' active-lane
      byte addresses (``int64``), with instruction *i* owning the slice
      ``addresses[extents[i]:extents[i + 1]]``.

    Instruction order within the batch is the warp's emission order, so
    folding a batch is equivalent to folding its expansion into individual
    events (the equality tests assert byte-identical A-DCFGs).
    """

    block_id: int
    warp_id: int
    labels: Tuple[str, ...]
    label_ids: np.ndarray
    visits: np.ndarray
    instrs: np.ndarray
    spaces: np.ndarray
    is_stores: np.ndarray
    addresses: np.ndarray
    extents: np.ndarray

    @property
    def num_instructions(self) -> int:
        return int(self.label_ids.shape[0])

    def iter_events(self):
        """Expand back into per-instruction :class:`MemoryAccessEvent`s.

        Reference-path helper (tests and any consumer that predates the
        columnar pipeline): yields events in the original emission order.
        """
        for i in range(self.num_instructions):
            lo, hi = int(self.extents[i]), int(self.extents[i + 1])
            yield MemoryAccessEvent.from_array(
                block_id=self.block_id, warp_id=self.warp_id,
                label=self.labels[int(self.label_ids[i])],
                visit=int(self.visits[i]), instr=int(self.instrs[i]),
                space=MemorySpace(int(self.spaces[i])),
                is_store=bool(self.is_stores[i]),
                addresses=self.addresses[lo:hi])


@dataclass(frozen=True)
class SyncEvent(TraceEvent):
    """A ``__syncthreads()`` executed by a warp (traced, semantically inert
    because warps of a block run to completion in sequence)."""

    block_id: int
    warp_id: int
