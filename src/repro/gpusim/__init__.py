"""A SIMT GPU execution simulator.

This package stands in for the NVIDIA GPU + CUDA runtime that the Owl paper
instruments with NVBit.  It executes *kernels* written in a small structured
warp-level DSL (:mod:`repro.gpusim.context`) with faithful SIMT semantics:

* threads are grouped into warps of 32 lanes that execute in lock step;
* warp-uniform branches skip the untaken side (so the warp's basic-block
  sequence — the thing a side-channel attacker observes — depends on the
  branch condition);
* intra-warp divergent branches are executed with *predication*: the warp
  visits both sides with complementary active masks, which is exactly the
  mechanism that hides control-flow leakage in the paper's ``max_pool2d``
  case study;
* memory accesses are issued per active lane against a device memory model
  with CUDA's memory spaces and an allocator with optional ASLR.

The simulator's observable output is a stream of trace events
(:mod:`repro.gpusim.events`), which is what the NVBit-like layer in
:mod:`repro.tracing` consumes.
"""

from repro.gpusim.cache import (
    CacheConfig,
    CacheHierarchy,
    CacheSimulator,
    KernelCacheStats,
    SetAssociativeCache,
)
from repro.gpusim.cohort import CohortContext, CohortSharedView, CohortSplit
from repro.gpusim.context import SimtDivergenceError, WarpContext
from repro.gpusim.device import Device, DeviceConfig
from repro.gpusim.events import (
    BasicBlockEvent,
    KernelBeginEvent,
    KernelEndEvent,
    MemoryAccessEvent,
    MemoryBatchEvent,
    SyncEvent,
    TraceEvent,
)
from repro.gpusim.kernel import Kernel, LaunchConfig, kernel
from repro.gpusim.memory import (
    Allocation,
    DeviceBuffer,
    DeviceMemory,
    MemoryAllocator,
    MemorySpace,
)
from repro.gpusim.warp import WARP_SIZE, full_mask, lane_vector

__all__ = [
    "WARP_SIZE",
    "Allocation",
    "BasicBlockEvent",
    "CacheConfig",
    "CacheHierarchy",
    "CacheSimulator",
    "KernelCacheStats",
    "SetAssociativeCache",
    "CohortContext",
    "CohortSharedView",
    "CohortSplit",
    "Device",
    "DeviceBuffer",
    "DeviceConfig",
    "DeviceMemory",
    "Kernel",
    "KernelBeginEvent",
    "KernelEndEvent",
    "LaunchConfig",
    "MemoryAccessEvent",
    "MemoryBatchEvent",
    "MemoryAllocator",
    "MemorySpace",
    "SimtDivergenceError",
    "SyncEvent",
    "TraceEvent",
    "WarpContext",
    "full_mask",
    "kernel",
    "lane_vector",
]
