"""Warp-level structured-control DSL with SIMT semantics.

Kernels are Python functions executed once per *warp*.  Every per-lane value
is a NumPy vector of 32 lanes, and control flow is expressed through the
:class:`WarpContext` so the simulator can model CUDA's branching behaviour:

* ``k.block(label)`` marks entry into a basic block (the unit of the paper's
  A-DCFG nodes and of the warp control-flow trace);
* ``k.branch(cond)`` returns a :class:`BranchHandle` whose ``then`` /
  ``otherwise`` bodies execute **only if at least one active lane takes
  them** — a warp-uniform condition therefore skips the untaken side
  (observable control flow), while a divergent condition visits both sides
  with complementary masks (predicated execution, which hides per-thread
  control flow exactly as §II-B and §VIII-B of the paper describe);
* ``k.while_(label, cond_fn)`` is a divergent loop: lanes retire as their
  condition goes false and the warp iterates while any lane is live;
* ``k.range_(label, n)`` is a warp-uniform counted loop;
* ``k.load`` / ``k.store`` issue per-active-lane memory accesses that are
  reported as :class:`~repro.gpusim.events.MemoryAccessEvent` with NVBit
  memory-space types.

Bodies of ``then`` / ``otherwise`` / loops are written as ``for _ in ...:``
so that a region whose mask is empty is skipped without executing Python
code, mirroring a taken/untaken branch.

This per-warp loop is the **reference execution engine**: the warp-cohort
engine (:mod:`repro.gpusim.cohort`, on by default) runs every warp of a
launch in one ``(num_warps, 32)`` pass and is asserted byte-identical to
the traces produced here.  Debugging a suspected engine bug, or running a
kernel that cannot keep its NumPy shape-polymorphic, is what
``cohort=False`` / ``@kernel(cohort=False)`` are for.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import TraceError
from repro.gpusim.events import (
    BasicBlockEvent,
    MemoryAccessEvent,
    MemoryBatchEvent,
    SyncEvent,
)
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.memory import DeviceBuffer, MemorySpace
from repro.gpusim.warp import (
    WARP_SIZE,
    lane_bool,
    lane_vector,
)

#: Per-lane ballot weights: bit *i* for lane *i* (``__ballot_sync`` layout).
_BALLOT_WEIGHTS = np.left_shift(np.uint64(1),
                                np.arange(WARP_SIZE, dtype=np.uint64))


class SimtDivergenceError(TraceError):
    """Raised when a warp-uniform value is requested but lanes disagree."""


class BranchHandle:
    """The two arms of one conditional branch.

    Captures the warp's active mask at the point of the branch so that
    ``then`` and ``otherwise`` see complementary lane sets regardless of
    what the bodies do to the mask.
    """

    def __init__(self, ctx: "WarpContext", cond: np.ndarray) -> None:
        self._ctx = ctx
        self._outer = ctx.active.copy()
        self._cond = lane_bool(cond)

    def then(self, label: str) -> Iterator[None]:
        """Execute the taken arm if any active lane satisfies the condition."""
        return self._arm(label, self._outer & self._cond)

    def otherwise(self, label: str) -> Iterator[None]:
        """Execute the fall-through arm if any active lane fails the condition."""
        return self._arm(label, self._outer & ~self._cond)

    def _arm(self, label: str, taken: np.ndarray) -> Iterator[None]:
        ctx = self._ctx
        if not taken.any():
            return
        saved = ctx.active
        ctx._set_active(taken)
        try:
            ctx.block(label)
            yield None
        finally:
            ctx._set_active(saved)


class WarpContext:
    """Execution context of one warp inside one kernel launch.

    Instances are created by :class:`repro.gpusim.device.Device`; kernel
    bodies receive one as their first argument.
    """

    def __init__(self, launch: LaunchConfig, block_id: int, warp_id: int,
                 emit: Callable, shared_alloc: Callable,
                 columnar: bool = False) -> None:
        self._launch = launch
        self._block_id = block_id
        self._warp_id = warp_id
        self._emit = emit
        self._shared_alloc = shared_alloc
        self._columnar = columnar
        if columnar:
            # per-warp columnar buffers: one row per memory instruction,
            # flushed as a single MemoryBatchEvent at warp retirement
            self._col_label_index: Dict[str, int] = {}
            self._col_labels: List[str] = []
            self._col_rows: List[Tuple[int, int, int, int, bool]] = []
            self._col_addresses: List[np.ndarray] = []

        self.lane = np.arange(WARP_SIZE, dtype=np.int64)
        thread_in_block = warp_id * WARP_SIZE + self.lane
        self._thread_in_block = thread_in_block
        #: lanes that exist at all (the last warp of a block may be partial)
        self._exists = thread_in_block < launch.threads_per_block
        self._active = self._exists.copy()

        self._current_label: Optional[str] = None
        self._visit_counts: dict = {}
        self._current_visit = 0
        self._instr_ordinal = 0

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def launch(self) -> LaunchConfig:
        return self._launch

    @property
    def block_id(self) -> int:
        """Linearised block (CTA) id."""
        return self._block_id

    @property
    def warp_id(self) -> int:
        """Warp id within the block (unique only per block, as in NVBit)."""
        return self._warp_id

    @property
    def global_warp_id(self) -> int:
        return self._block_id * self._launch.warps_per_block + self._warp_id

    @property
    def block_idx(self) -> Tuple[int, int, int]:
        """3-D block index (``blockIdx``)."""
        return self._launch.block_index(self._block_id)

    @property
    def block_dim(self) -> Tuple[int, int, int]:
        return self._launch.block

    @property
    def grid_dim(self) -> Tuple[int, int, int]:
        return self._launch.grid

    @property
    def active(self) -> np.ndarray:
        """Current active-lane mask (copy-on-write discipline: do not mutate)."""
        return self._active

    def _set_active(self, mask: np.ndarray) -> None:
        self._active = np.asarray(mask, dtype=bool) & self._exists

    def thread_idx(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-lane ``threadIdx`` components."""
        bx, by, _bz = self._launch.block
        t = self._thread_in_block
        return t % bx, (t // bx) % by, t // (bx * by)

    def global_tid(self) -> np.ndarray:
        """Per-lane linearised global thread id."""
        return (self._block_id * self._launch.threads_per_block
                + self._thread_in_block)

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------

    def block(self, label: str) -> None:
        """Mark entry of the warp into basic block *label*.

        Emits a :class:`BasicBlockEvent` and resets the per-visit memory
        instruction ordinal.  A block entry with no active lane is a
        simulator-usage error: control constructs never enter such blocks.
        """
        if not self._active.any():
            raise SimtDivergenceError(
                f"basic block {label!r} entered with no active lane")
        visit = self._visit_counts.get(label, 0)
        self._visit_counts[label] = visit + 1
        self._current_label = label
        self._current_visit = visit
        self._instr_ordinal = 0
        self._emit(BasicBlockEvent(
            block_id=self._block_id, warp_id=self._warp_id, label=label,
            visit=visit, active_lanes=int(self._active.sum())))

    def branch(self, cond) -> BranchHandle:
        """Begin a conditional with per-lane condition *cond*."""
        return BranchHandle(self, lane_bool(cond))

    def range_(self, label: str, start: int, stop: Optional[int] = None,
               step: int = 1) -> Iterator[int]:
        """Warp-uniform counted loop; enters *label* once per iteration."""
        if stop is None:
            start, stop = 0, start
        for i in range(start, stop, step):
            self.block(label)
            yield i

    def while_(self, label: str, cond_fn: Callable[[], np.ndarray],
               max_iter: int = 1_000_000) -> Iterator[int]:
        """Divergent loop: iterate while *any* live lane's condition holds.

        Lanes whose condition turns false retire (are masked off) but the
        warp keeps iterating for the remaining lanes — the SIMT behaviour
        that makes loop trip counts observable only at warp granularity.
        """
        outer = self._active
        live = outer.copy()
        iteration = 0
        try:
            while True:
                self._set_active(live)
                cond = lane_bool(cond_fn()) & live
                if not cond.any():
                    break
                if iteration >= max_iter:
                    raise SimtDivergenceError(
                        f"divergent loop {label!r} exceeded {max_iter} iterations")
                live = cond
                self._set_active(live)
                self.block(label)
                yield iteration
                iteration += 1
        finally:
            self._set_active(outer)

    def uniform(self, values) -> int:
        """Collapse a warp-uniform lane vector to a Python scalar.

        Raises :class:`SimtDivergenceError` when active lanes disagree —
        the same misuse that would be undefined behaviour on hardware
        (e.g. a divergent value used as a shared loop bound).
        """
        vec = lane_vector(values)
        active_values = vec[self._active]
        if active_values.size == 0:
            raise SimtDivergenceError("uniform() with no active lane")
        first = active_values[0]
        if not (active_values == first).all():
            raise SimtDivergenceError(
                "uniform() on a divergent value: "
                f"{np.unique(active_values)!r}")
        return first.item()

    # ------------------------------------------------------------------
    # predication and warp intrinsics
    # ------------------------------------------------------------------

    def select(self, cond, if_true, if_false) -> np.ndarray:
        """Per-lane select (predicated move): no control flow is created.

        This models the compiler turning short branches into predicated
        instructions, which the paper notes never shows up in the trace.
        """
        return np.where(lane_bool(cond), lane_vector(if_true),
                        lane_vector(if_false))

    def any(self, cond) -> bool:
        """``__any_sync`` over the active lanes."""
        return bool((lane_bool(cond) & self._active).any())

    def all(self, cond) -> bool:
        """``__all_sync`` over the active lanes."""
        masked = lane_bool(cond)[self._active]
        return bool(masked.all()) if masked.size else True

    def ballot(self, cond) -> int:
        """``__ballot_sync``: bitmask of active lanes with a true condition.

        Vectorised: one dot product of the lane mask with the per-lane bit
        weights replaces the Python ``sum`` over ``np.nonzero`` (property-
        tested against the scalar formulation).
        """
        bits = lane_bool(cond) & self._active
        return int(bits.astype(np.uint64) @ _BALLOT_WEIGHTS)

    def reduce_sum(self, values) -> float:
        """Warp reduction: sum of the active lanes."""
        vec = lane_vector(values)
        return vec[self._active].sum().item()

    def reduce_max(self, values):
        vec = lane_vector(values)
        chosen = vec[self._active]
        if chosen.size == 0:
            raise SimtDivergenceError("reduce_max() with no active lane")
        return chosen.max().item()

    def reduce_min(self, values):
        vec = lane_vector(values)
        chosen = vec[self._active]
        if chosen.size == 0:
            raise SimtDivergenceError("reduce_min() with no active lane")
        return chosen.min().item()

    def shfl(self, values, src_lane: int) -> np.ndarray:
        """``__shfl_sync``: broadcast lane *src_lane*'s value to all lanes."""
        vec = lane_vector(values)
        return np.full(WARP_SIZE, vec[src_lane], dtype=vec.dtype)

    def shfl_up(self, values, delta: int) -> np.ndarray:
        """``__shfl_up_sync``: lane i receives lane i-delta's value
        (lanes below *delta* keep their own, as on hardware)."""
        vec = lane_vector(values)
        out = vec.copy()
        if delta > 0:
            out[delta:] = vec[:-delta] if delta < WARP_SIZE else out[delta:]
        return out

    def shfl_down(self, values, delta: int) -> np.ndarray:
        """``__shfl_down_sync``: lane i receives lane i+delta's value
        (the top *delta* lanes keep their own)."""
        vec = lane_vector(values)
        out = vec.copy()
        if 0 < delta < WARP_SIZE:
            out[:-delta] = vec[delta:]
        return out

    def shfl_xor(self, values, mask: int) -> np.ndarray:
        """``__shfl_xor_sync``: butterfly exchange with lane ``i ^ mask``."""
        vec = lane_vector(values)
        return vec[np.arange(WARP_SIZE) ^ (mask & (WARP_SIZE - 1))]

    def syncthreads(self) -> None:
        """Block-level barrier.

        Traced (it is an instruction the paper's false-positive analysis
        mentions) but semantically inert: the simulator runs each warp of a
        block to completion, so cross-warp ordering inside a block is not
        modelled.
        """
        self._emit(SyncEvent(block_id=self._block_id, warp_id=self._warp_id))

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------

    def shared(self, name: str, shape, dtype=np.int64) -> DeviceBuffer:
        """Get (or create) this block's shared-memory buffer *name*.

        Shared buffers live for the duration of the launch and are common to
        all warps of the same block, like ``__shared__`` arrays.
        """
        return self._shared_alloc(self._block_id, name, shape, dtype)

    def load(self, buf: DeviceBuffer, index,
             space: Optional[MemorySpace] = None) -> np.ndarray:
        """Per-lane gather from *buf* at element *index* (lane vector).

        Only active lanes access memory and only their addresses are traced;
        inactive lanes receive 0 (their result is architecturally undefined,
        and a deterministic filler keeps runs reproducible).
        """
        idx = lane_vector(index, dtype=np.int64)
        out = np.zeros(WARP_SIZE, dtype=buf.data.dtype)
        if self._active.any():
            active_idx = idx[self._active]
            buf.check_bounds(active_idx)
            self._emit_mem(buf, active_idx, space, is_store=False)
            out[self._active] = buf.data.reshape(-1)[active_idx]
        return out

    def store(self, buf: DeviceBuffer, index, values,
              space: Optional[MemorySpace] = None) -> None:
        """Per-lane scatter of *values* into *buf* at element *index*.

        When several active lanes target the same element, the highest lane
        wins (matching CUDA's unspecified-but-single-winner semantics with a
        deterministic choice).
        """
        idx = lane_vector(index, dtype=np.int64)
        vals = lane_vector(values)
        if not self._active.any():
            return
        active_idx = idx[self._active]
        buf.check_bounds(active_idx)
        self._emit_mem(buf, active_idx, space, is_store=True)
        flat = buf.data.reshape(-1)
        flat[active_idx] = vals[self._active].astype(buf.data.dtype)

    def atomic_add(self, buf: DeviceBuffer, index, values) -> None:
        """Per-lane atomic add (all lane contributions are accumulated)."""
        idx = lane_vector(index, dtype=np.int64)
        vals = lane_vector(values)
        if not self._active.any():
            return
        active_idx = idx[self._active]
        buf.check_bounds(active_idx)
        self._emit_mem(buf, active_idx, None, is_store=True)
        flat = buf.data.reshape(-1)
        np.add.at(flat, active_idx, vals[self._active].astype(buf.data.dtype))

    def _emit_mem(self, buf: DeviceBuffer, active_idx: np.ndarray,
                  space: Optional[MemorySpace], is_store: bool) -> None:
        if self._current_label is None:
            raise SimtDivergenceError(
                "memory access outside any basic block: call k.block() first")
        addresses = buf.addresses_for(active_idx)
        resolved_space = space if space is not None else buf.space
        if self._columnar:
            label = self._current_label
            label_id = self._col_label_index.get(label)
            if label_id is None:
                label_id = len(self._col_labels)
                self._col_label_index[label] = label_id
                self._col_labels.append(label)
            self._col_rows.append((label_id, self._current_visit,
                                   self._instr_ordinal, resolved_space.value,
                                   is_store))
            self._col_addresses.append(addresses)
        else:
            self._emit(MemoryAccessEvent.from_array(
                block_id=self._block_id, warp_id=self._warp_id,
                label=self._current_label, visit=self._current_visit,
                instr=self._instr_ordinal, space=resolved_space,
                is_store=is_store, addresses=addresses))
        self._instr_ordinal += 1

    def flush_columnar(self) -> Optional[MemoryBatchEvent]:
        """Package the warp's buffered memory instructions into one batch.

        Called by the device at warp retirement in columnar mode; returns
        None when the warp issued no memory instruction.  The buffers are
        cleared so a context could in principle be flushed mid-launch.
        """
        if not self._columnar or not self._col_rows:
            return None
        label_ids, visits, instrs, spaces, stores = zip(*self._col_rows)
        sizes = np.fromiter((chunk.shape[0] for chunk in self._col_addresses),
                            dtype=np.int64, count=len(self._col_addresses))
        extents = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=extents[1:])
        event = MemoryBatchEvent(
            block_id=self._block_id, warp_id=self._warp_id,
            labels=tuple(self._col_labels),
            label_ids=np.asarray(label_ids, dtype=np.int32),
            visits=np.asarray(visits, dtype=np.int32),
            instrs=np.asarray(instrs, dtype=np.int32),
            spaces=np.asarray(spaces, dtype=np.uint8),
            is_stores=np.asarray(stores, dtype=bool),
            addresses=np.concatenate(self._col_addresses),
            extents=extents)
        self._col_rows = []
        self._col_addresses = []
        return event
