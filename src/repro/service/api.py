"""Transport-agnostic request handling for the detection service.

Both front ends — the JSON-lines socket
(:class:`~repro.service.server.ServiceServer`) and the HTTP/JSON server
(:mod:`repro.service.http`) — speak the *same* request schema and route
through one :class:`ServiceAPI`, so :class:`CampaignScheduler` never
sees a transport: a request is a dict with an ``op`` plus credentials,
the response a dict with ``ok`` and, on failure, a machine-readable
``code`` the transports map to exit codes (CLI) or HTTP statuses.

Authentication is bearer-token: the server is configured with a
``token → tenant`` table; a request presents its token in the JSON
(``"token"`` field, socket) or the ``Authorization: Bearer`` header
(HTTP).  With no table configured the service is *open* — every request
is accepted and may name its tenant explicitly (``"tenant"`` field),
which is what single-user deployments and the test-benches use.  With a
table, a missing or unknown token is rejected with ``code="auth"``
before the op is looked at.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Dict, Optional

from repro.errors import AuthError, ConfigError, QuotaError
from repro.service.scheduler import (
    DEFAULT_TENANT, STAGE_COMPLETE, STAGE_FAILED, CampaignScheduler)

#: failure ``code`` → HTTP status, shared by the HTTP front end and docs.
HTTP_STATUS = {
    "bad_request": 400,
    "auth": 401,
    "not_found": 404,
    "quota": 429,
    "error": 500,
}


def error_response(error: BaseException) -> Dict:
    """The protocol's failure envelope for an exception."""
    if isinstance(error, AuthError):
        code = "auth"
    elif isinstance(error, QuotaError):
        code = "quota"
    elif isinstance(error, KeyError):
        code = "not_found"
    elif isinstance(error, (ConfigError, TypeError)):
        code = "bad_request"
    else:
        code = "error"
    return {"ok": False, "code": code,
            "error": f"{type(error).__name__}: {error}"}


class ServiceAPI:
    """One scheduler behind a transport-neutral request dispatcher."""

    def __init__(self, scheduler: CampaignScheduler,
                 tokens: Optional[Dict[str, str]] = None,
                 poll_seconds: float = 0.05) -> None:
        self.scheduler = scheduler
        #: token → tenant; ``None`` (or empty) leaves the service open
        self.tokens = dict(tokens) if tokens else None
        self.poll_seconds = poll_seconds

    # ------------------------------------------------------------------
    # authentication
    # ------------------------------------------------------------------

    def authenticate(self, token: Optional[str],
                     requested_tenant: Optional[str] = None) -> str:
        """Resolve a request's tenant identity; raises :class:`AuthError`.

        Open mode (no token table): any request passes and may name its
        tenant.  Authenticated mode: the token *is* the identity — a
        request-supplied tenant name is ignored, so one tenant cannot
        bill another.
        """
        if not self.tokens:
            if requested_tenant:
                return str(requested_tenant)
            return DEFAULT_TENANT
        if token is None:
            raise AuthError("this service requires a bearer token "
                            "(pass --token / Authorization: Bearer)")
        tenant = self.tokens.get(str(token))
        if tenant is None:
            raise AuthError("unknown bearer token")
        return tenant

    # ------------------------------------------------------------------
    # request dispatch (one request dict → one response dict)
    # ------------------------------------------------------------------

    def handle(self, request: Dict) -> Dict:
        try:
            tenant = self.authenticate(request.get("token"),
                                       request.get("tenant"))
            op = request.get("op")
            if op == "ping":
                return {"ok": True, "pong": True,
                        "authenticated": self.tokens is not None}
            if op == "submit":
                cid = self.scheduler.submit(
                    request["workload"], request.get("config") or {},
                    tenant=tenant)
                return {"ok": True, "campaign": cid,
                        "workload": request["workload"], "tenant": tenant}
            if op == "status":
                return {"ok": True,
                        "status": self.scheduler.status(
                            request.get("campaign"))}
            if op == "results":
                return {"ok": True,
                        "results": self.scheduler.results(
                            request["campaign"])}
            if op == "shutdown":
                return {"ok": True, "stopping": True, "_shutdown": True}
            return {"ok": False, "code": "bad_request",
                    "error": f"unknown op {op!r}"}
        except Exception as error:  # noqa: BLE001 — protocol boundary
            return error_response(error)

    # ------------------------------------------------------------------
    # watch streams (one request → many event dicts)
    # ------------------------------------------------------------------

    async def watch_events(self, cid: str,
                           poll_seconds: Optional[float] = None
                           ) -> AsyncIterator[Dict]:
        """Yield status-transition events until the campaign is terminal.

        The first event always reports the current stage (so a
        reconnecting client re-synchronises immediately), each later one
        fires on a stage change, and the final event carries the full
        results payload.  An unknown campaign yields one ``not_found``
        failure envelope and ends.
        """
        poll = self.poll_seconds if poll_seconds is None else poll_seconds
        last_stage: Optional[str] = None
        while True:
            try:
                row = self.scheduler.status(cid)
            except KeyError as error:
                yield error_response(error)
                return
            stage = row["stage"]
            if stage != last_stage:
                last_stage = stage
                if stage == STAGE_FAILED:
                    yield {"ok": True, "event": "failed", "campaign": cid,
                           "stage": stage, "error": row.get("error"),
                           "results": self.scheduler.results(cid)}
                    return
                if stage == STAGE_COMPLETE:
                    yield {"ok": True, "event": "complete", "campaign": cid,
                           "stage": stage,
                           "results": self.scheduler.results(cid)}
                    return
                yield {"ok": True, "event": "status", "campaign": cid,
                       "stage": stage,
                       "pending_units": row.get("pending_units", 0),
                       "backlog_units": row.get("backlog_units", 0)}
            await asyncio.sleep(poll)
