"""The campaign scheduler: submissions → work units → fleet → reports.

One :class:`CampaignScheduler` owns a :class:`~repro.service.queue.JobQueue`
and drives every submitted campaign through the stage machine

    tracing → planning → [evidence → folding] → reporting → complete

— or, for ``OwlConfig(adaptive=True)`` campaigns, through the
group-sequential loop

    tracing → planning → [evidence → deciding]* → reporting → complete

where each ``evidence`` stage records one round's replica slice
(``unit_runs`` partitioning always respects the round boundaries) and
the ``deciding`` stage's unit folds the prefix, checkpoints it, and
either stops the campaign or schedules the next round — enqueuing the
next stage's durable units the moment the previous stage's results are
all on disk.  The actual work happens wherever a unit is
claimed — fleet worker processes, or the scheduler process itself when
``workers == 0`` (same units, same results).

Fault handling is :class:`~repro.resilience.supervisor.ChunkSupervisor`'s
ladder lifted to fleet level, with the same split of responsibilities:

* a worker that *died or went silent* (process exit, expired lease) is an
  infrastructure fault — its leased units are re-queued deterministically
  (``WORKER_LOST`` → ``UNIT_REQUEUED``), and a unit that exhausts
  ``max_attempts`` fleet dispatches executes in the scheduler process
  instead (``FLEET_TO_LOCAL``, the terminal rung);
* a worker that *returned an error result* hit real program/unit code
  failure — that propagates and fails the campaign, exactly as
  worker-code exceptions propagate out of the chunk supervisor.

Multi-tenant amortisation: with ``coalesce=True`` (default), submissions
that resolve to the same (workload, analysis fingerprint, inputs) attach
to the in-flight execution instead of scheduling a duplicate; every
tenant still gets their own campaign id, status and results.  Distinct
campaigns additionally share phase-1 traces and the random evidence side
through the store's content-addressed reuse, so a fleet serving many
tenants does strictly less work than the tenants running alone.

Tenancy and fair admission: every submission carries a tenant identity
(resolved by the front end's bearer token, or ``anonymous``).  A
tenant's :class:`~repro.service.config.TenantQuota` caps its in-flight
campaigns at submit time (over-cap submissions raise
:class:`~repro.errors.QuotaError`, surfaced as HTTP 429) and its
admitted-at-once units: a stage's units land in the campaign's
*backlog*, and the scheduler admits them to the durable queue by
weighted fair stride — among tenants with backlog and headroom, the one
with the smallest accumulated pass (incremented by ``1/weight`` per
admitted unit) goes next — so a heavy tenant saturating the fleet can
delay but never starve a light one.  Admission order shapes only *when*
units run; reports stay bit-identical because unit results are
order-independent by construction.

Bit-identity: the terminal report unit is a plain ``Owl.detect`` against
the store the earlier units warmed, so "service report ≡ direct report"
reduces to the store layer's proven warm ≡ cold contract — at any worker
count, any ``unit_runs`` partition, and across injected worker deaths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.core.pipeline import OwlConfig
from repro.errors import CampaignError, QuotaError
from repro.gpusim.device import DeviceConfig
from repro.resilience.events import (
    FLEET_TO_LOCAL, UNIT_REQUEUED, WORKER_LOST, DegradationEvent)
from repro.service.config import ServiceConfig
from repro.service.execute import execute_unit
from repro.service.fleet import WorkerFleet
from repro.service.queue import JobQueue
from repro.service.units import (
    WorkUnit, decide_unit, evidence_units, fold_unit, plan_unit,
    report_unit, round_chunk_offsets, round_evidence_units, trace_units)
from repro.store.fingerprint import (
    analysis_fingerprint, fingerprint_inputs, fingerprint_value)
from repro.store.store import TraceStore

#: Campaign stages, in order.
STAGE_TRACING = "tracing"
STAGE_PLANNING = "planning"
STAGE_EVIDENCE = "evidence"
STAGE_DECIDING = "deciding"
STAGE_FOLDING = "folding"
STAGE_REPORTING = "reporting"
STAGE_COMPLETE = "complete"
STAGE_FAILED = "failed"

_LOCAL = "scheduler"

#: Tenant identity of unauthenticated submissions.
DEFAULT_TENANT = "anonymous"


def _num_chunks(total_runs: int, unit_runs: int) -> int:
    return (total_runs + unit_runs - 1) // unit_runs


def campaign_identity(workload: str, config: OwlConfig) -> str:
    """The coalescing key: what makes two submissions the same detection.

    Built from the same fingerprints the store keys reports under —
    operational knobs (workers, columnar, cohort, …) never enter it.
    """
    from repro.apps.registry import resolve
    _program, fixed_inputs, _random = resolve(workload)
    device_config = DeviceConfig()
    if config.cohort_step_budget is not None:
        device_config = replace(
            device_config, cohort_step_budget=config.cohort_step_budget)
    analysis_fp = analysis_fingerprint(config, device_config)
    inputs_fp = fingerprint_inputs(
        [fingerprint_value(value) for value in fixed_inputs()])
    return f"{workload}/{analysis_fp}/{inputs_fp}"


@dataclass
class CampaignState:
    """Scheduler-side view of one submitted campaign."""

    cid: str
    workload: str
    config_dict: Dict
    identity: str
    tenant: str = DEFAULT_TENANT
    stage: str = STAGE_TRACING
    #: admitted unit ids awaiting results (shrinks as results harvest)
    pending: List[str] = field(default_factory=list)
    #: this stage's units not yet admitted to the queue (quota backlog)
    backlog: List[WorkUnit] = field(default_factory=list)
    plan: Optional[Dict] = None
    report: Optional[Dict] = None
    error: Optional[str] = None
    coalesced_into: Optional[str] = None
    degradations: List[DegradationEvent] = field(default_factory=list)
    submitted_at: float = 0.0
    #: current adaptive round (meaningful only while an adaptive
    #: campaign loops through evidence → deciding)
    adaptive_round: int = 0

    @property
    def done(self) -> bool:
        return self.stage in (STAGE_COMPLETE, STAGE_FAILED)

    def spec(self) -> Dict:
        return {"workload": self.workload, "config": self.config_dict}


class CampaignScheduler:
    """Decompose campaigns into durable units and see them through."""

    def __init__(self, store_root, queue_root,
                 config: Optional[ServiceConfig] = None,
                 fleet: Optional[WorkerFleet] = None) -> None:
        self.store_root = str(store_root)
        self.config = config or ServiceConfig()
        self.queue = JobQueue(queue_root)
        self.fleet = fleet
        self.campaigns: Dict[str, CampaignState] = {}
        self._by_identity: Dict[str, str] = {}
        self._seq = 0
        self.events: List[DegradationEvent] = []
        #: weighted fair stride state: tenant → accumulated pass
        self._tenant_pass: Dict[str, float] = {}
        TraceStore(self.store_root)  # create/validate the shared store

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, workload: str,
               config_overrides: Optional[Dict] = None,
               tenant: str = DEFAULT_TENANT) -> str:
        """Register a campaign for *tenant*; returns its id immediately.

        Raises :class:`~repro.errors.QuotaError` when the tenant's
        in-flight campaign cap is already met — the 429 path; nothing is
        recorded, so the tenant can resubmit once a campaign finishes.
        """
        import dataclasses

        config = OwlConfig(**(config_overrides or {}))
        quota = self.config.quota_for(tenant)
        if quota.max_campaigns is not None:
            active = sum(1 for state in self.campaigns.values()
                         if state.tenant == tenant and not state.done)
            if active >= quota.max_campaigns:
                raise QuotaError(
                    f"tenant {tenant!r} already has {active} campaign(s) "
                    f"in flight (quota: {quota.max_campaigns}); retry "
                    f"after one completes")
        identity = campaign_identity(workload, config)
        self._seq += 1
        cid = f"c{self._seq:04d}"
        state = CampaignState(cid=cid, workload=workload,
                              config_dict=dataclasses.asdict(config),
                              identity=identity, tenant=tenant,
                              submitted_at=time.time())
        primary_cid = self._by_identity.get(identity)
        primary = (self.campaigns.get(primary_cid)
                   if primary_cid is not None else None)
        if (self.config.coalesce and primary is not None
                and primary.stage != STAGE_FAILED):
            state.coalesced_into = primary.cid
            state.stage = primary.stage
            self.campaigns[cid] = state
            self.queue.save_campaign(cid, dict(
                state.spec(), coalesced_into=primary.cid, tenant=tenant))
            self.queue.journal("coalesced", campaign=cid, into=primary.cid,
                               tenant=tenant)
            return cid
        self.campaigns[cid] = state
        self._by_identity[identity] = cid
        self.queue.save_campaign(cid, dict(state.spec(), tenant=tenant))
        self.queue.journal("submitted", campaign=cid, workload=workload,
                           tenant=tenant)
        self._start(state)
        return cid

    def _start(self, state: CampaignState) -> None:
        from repro.apps.registry import resolve
        _program, fixed_inputs, _random = resolve(state.workload)
        num_inputs = len(fixed_inputs())
        state.stage = STAGE_TRACING
        self._enqueue(state, trace_units(state.cid, state.spec(), num_inputs))

    def _enqueue(self, state: CampaignState, units) -> None:
        """Stage the units in the campaign's backlog and admit what the
        tenant's quota allows right away (the rest follows per tick)."""
        state.backlog = list(units)
        state.pending = []
        self._admit()

    # -- weighted fair admission ---------------------------------------

    def _admit(self) -> None:
        """Move backlogged units into the durable queue, fairly.

        In-flight is counted per tenant over admitted-but-unharvested
        units; admission picks, among tenants with backlog and quota
        headroom, the smallest accumulated stride pass (ties break by
        name for determinism) and charges it ``1/weight`` per unit.
        With no quotas and no admission window every unit is admitted
        immediately — the pre-tenancy behaviour.
        """
        inflight: Dict[str, int] = {}
        total_inflight = 0
        backlogged: Dict[str, List[CampaignState]] = {}
        for state in self.campaigns.values():
            if state.done or state.coalesced_into is not None:
                continue
            count = len(state.pending)
            inflight[state.tenant] = inflight.get(state.tenant, 0) + count
            total_inflight += count
            if state.backlog:
                backlogged.setdefault(state.tenant, []).append(state)
        for states in backlogged.values():
            states.sort(key=lambda state: state.cid)
        while backlogged:
            if (self.config.admission_window is not None
                    and total_inflight >= self.config.admission_window):
                break
            candidates = []
            for tenant in backlogged:
                cap = self.config.quota_for(tenant).max_inflight
                if cap is None or inflight.get(tenant, 0) < cap:
                    candidates.append(tenant)
            if not candidates:
                break
            tenant = min(candidates,
                         key=lambda t: (self._tenant_pass.get(t, 0.0), t))
            states = backlogged[tenant]
            state = states[0]
            unit = state.backlog.pop(0)
            if not state.backlog:
                states.pop(0)
                if not states:
                    del backlogged[tenant]
            if self.queue.enqueue(unit):
                self.queue.journal("enqueued", unit=unit.uid,
                                   kind=unit.kind, campaign=state.cid,
                                   tenant=tenant)
            state.pending.append(unit.uid)
            inflight[tenant] = inflight.get(tenant, 0) + 1
            total_inflight += 1
            self._tenant_pass[tenant] = (
                self._tenant_pass.get(tenant, 0.0)
                + 1.0 / self.config.quota_for(tenant).weight)

    # ------------------------------------------------------------------
    # the drive loop
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """One scheduling round: reap faults, run/harvest units, advance."""
        self._reap_fleet()
        self._reap_leases()
        self._admit()
        if (self.fleet is None or self.config.workers == 0) \
                and not self.config.external_workers:
            self._run_local_pending()
        for state in list(self.campaigns.values()):
            if not state.done and state.coalesced_into is None:
                self._harvest(state)
        self._mirror_coalesced()

    def wait(self, cids=None, timeout: Optional[float] = None) -> bool:
        """Tick until the given campaigns (default: all) are terminal."""
        deadline = None if timeout is None else time.time() + timeout
        targets = list(self.campaigns) if cids is None else list(cids)
        while True:
            self.tick()
            if all(self.campaigns[cid].done for cid in targets
                   if cid in self.campaigns):
                return True
            if deadline is not None and time.time() > deadline:
                return False
            time.sleep(self.config.poll_seconds)

    # -- fault reaping --------------------------------------------------

    def _reap_fleet(self) -> None:
        if self.fleet is None:
            return
        for worker_id in self.fleet.poll():
            held = self.queue.claims_by_worker(worker_id)
            event = DegradationEvent(
                kind=WORKER_LOST, subsystem="fleet",
                reason=f"worker {worker_id} exited",
                context={"worker": worker_id, "held_units": len(held)})
            self.events.append(event)
            self.queue.journal("worker_lost", worker=worker_id,
                               held=list(held))
            for uid in held:
                self._requeue(uid, reason=f"worker {worker_id} died")

    def _reap_leases(self) -> None:
        for uid in self.queue.expired_claims(self.config.lease_seconds):
            info = self.queue.claim_info(uid)
            worker = info.get("worker", "?") if info else "?"
            self.events.append(DegradationEvent(
                kind=WORKER_LOST, subsystem="fleet",
                reason=f"lease on {uid} expired (worker {worker} silent)",
                context={"worker": worker, "unit": uid}))
            self.queue.journal("lease_expired", unit=uid, worker=worker)
            self._requeue(uid, reason=f"lease expired (worker {worker})")

    def _requeue(self, uid: str, reason: str) -> None:
        unit = self.queue.requeue(uid)
        if unit is None:
            return
        state = self.campaigns.get(unit.campaign)
        event = DegradationEvent(
            kind=UNIT_REQUEUED, subsystem="fleet", reason=reason,
            context={"unit": uid, "attempt": unit.attempts})
        if state is not None:
            state.degradations.append(event)
        self.queue.journal("requeued", unit=uid, attempt=unit.attempts)
        if unit.attempts >= self.config.max_attempts:
            # terminal rung: run it here, now — the fleet forfeited it
            degrade = DegradationEvent(
                kind=FLEET_TO_LOCAL, subsystem="fleet",
                reason=f"unit {uid} exhausted {unit.attempts} fleet "
                       f"attempts", context={"unit": uid})
            if state is not None:
                state.degradations.append(degrade)
            self.events.append(degrade)
            self.queue.journal("fleet_to_local", unit=uid)
            self._execute_local(uid)

    # -- execution ------------------------------------------------------

    def _execute_local(self, uid: str) -> None:
        if self.queue.result(uid) is not None:
            return
        if not self.queue.claim(uid, _LOCAL):
            return  # someone else holds it; their result (or death) wins
        unit = self.queue.load_unit(uid)
        if unit is None:
            self.queue.release(uid)
            return
        try:
            payload = execute_unit(unit, self.store_root)
        except Exception as error:  # noqa: BLE001 — recorded as unit failure
            self.queue.fail(uid, f"{type(error).__name__}: {error}", _LOCAL)
        else:
            self.queue.complete(uid, payload, _LOCAL)

    def _run_local_pending(self) -> None:
        """No fleet: the scheduler is the worker (identical results)."""
        for state in list(self.campaigns.values()):
            if state.done or state.coalesced_into is not None:
                continue
            for uid in list(state.pending):
                if self.queue.result(uid) is None:
                    self._execute_local(uid)

    # -- harvesting + stage advance ------------------------------------

    def _harvest(self, state: CampaignState) -> None:
        remaining = []
        payloads = {}
        for uid in state.pending:
            result = self.queue.result(uid)
            if result is None:
                remaining.append(uid)
                continue
            if result.get("status") != "done":
                state.stage = STAGE_FAILED
                state.error = (f"unit {uid} failed: "
                               f"{result.get('error', 'unknown error')}")
                state.pending = []
                state.backlog = []
                self.queue.journal("failed", campaign=state.cid,
                                   unit=uid, error=state.error)
                return
            payload = result.get("payload", {})
            payloads[uid] = payload
            for data in payload.get("degradations", []):
                state.degradations.append(DegradationEvent.from_dict(data))
        if remaining or state.backlog:
            state.pending = remaining
            return
        self._advance(state, payloads)

    def _advance(self, state: CampaignState, payloads: Dict) -> None:
        spec = state.spec()
        config = OwlConfig(**state.config_dict)
        if state.stage == STAGE_TRACING:
            from repro.apps.registry import resolve
            _program, fixed_inputs, _random = resolve(state.workload)
            state.stage = STAGE_PLANNING
            self._enqueue(state, [plan_unit(state.cid, spec,
                                            len(fixed_inputs()))])
            return
        if state.stage == STAGE_PLANNING:
            plan = payloads[f"{state.cid}.plan"]
            state.plan = plan
            if plan["early_exit"]:
                state.stage = STAGE_REPORTING
                self._enqueue(state, [report_unit(state.cid, spec,
                                                  plan["num_classes"])])
                return
            if config.adaptive:
                state.adaptive_round = 0
                state.stage = STAGE_EVIDENCE
                self._enqueue(state,
                              self._adaptive_round_units(state, config, 0))
                return
            units = []
            for rep_index in plan["rep_indices"]:
                units.extend(evidence_units(
                    state.cid, spec, "fixed", rep_index, config.fixed_runs,
                    self.config.unit_runs))
            units.extend(evidence_units(
                state.cid, spec, "random", -1, config.random_runs,
                self.config.unit_runs))
            state.stage = STAGE_EVIDENCE
            self._enqueue(state, units)
            return
        if state.stage == STAGE_EVIDENCE:
            plan = state.plan or {}
            if config.adaptive:
                schedule = self._adaptive_schedule(config)
                round_index = state.adaptive_round
                state.stage = STAGE_DECIDING
                self._enqueue(state, [decide_unit(
                    state.cid, spec, round_index,
                    plan.get("rep_indices", []),
                    round_chunk_offsets(schedule.fixed,
                                        self.config.unit_runs)[
                                            round_index + 1],
                    round_chunk_offsets(schedule.random,
                                        self.config.unit_runs)[
                                            round_index + 1])])
                return
            units = []
            for rep_index in plan.get("rep_indices", []):
                chunks = _num_chunks(config.fixed_runs, self.config.unit_runs)
                units.append(fold_unit(state.cid, spec, "fixed", rep_index,
                                       chunks))
            chunks = _num_chunks(config.random_runs, self.config.unit_runs)
            units.append(fold_unit(state.cid, spec, "random", -1, chunks))
            state.stage = STAGE_FOLDING
            self._enqueue(state, units)
            return
        if state.stage == STAGE_DECIDING:
            verdict = payloads[
                f"{state.cid}.decide.{state.adaptive_round:02d}"]
            self.queue.journal(
                "decided", campaign=state.cid,
                round=state.adaptive_round, stop=verdict.get("stop"),
                undecided=verdict.get("undecided"))
            if verdict.get("stop"):
                state.stage = STAGE_REPORTING
                self._enqueue(state, [report_unit(state.cid, spec, 0)])
                return
            state.adaptive_round += 1
            state.stage = STAGE_EVIDENCE
            self._enqueue(state, self._adaptive_round_units(
                state, config, state.adaptive_round))
            return
        if state.stage == STAGE_FOLDING:
            state.stage = STAGE_REPORTING
            self._enqueue(state, [report_unit(state.cid, spec, 0)])
            return
        if state.stage == STAGE_REPORTING:
            state.report = payloads[f"{state.cid}.report"]
            state.stage = STAGE_COMPLETE
            state.pending = []
            self.queue.journal("complete", campaign=state.cid,
                               report_key=state.report.get("report_key"),
                               has_leaks=state.report.get("has_leaks"))
            return
        raise CampaignError(
            f"campaign {state.cid} advanced from unexpected stage "
            f"{state.stage!r}")

    def _adaptive_schedule(self, config: OwlConfig):
        from repro.core.adaptive import round_schedule
        return round_schedule(config.fixed_runs, config.random_runs,
                              config.adaptive_rounds)

    def _adaptive_round_units(self, state: CampaignState, config: OwlConfig,
                              round_index: int) -> List:
        """Evidence units for one adaptive round's replica slice.

        Chunk ordinals continue across rounds (``round_chunk_offsets``),
        so the decide unit can merge every chunk recorded so far in one
        deterministic order; a round whose slice is empty on one side
        (boundaries can coincide for tiny budgets) simply contributes no
        units for that side.
        """
        plan = state.plan or {}
        spec = state.spec()
        schedule = self._adaptive_schedule(config)
        fixed_offsets = round_chunk_offsets(schedule.fixed,
                                            self.config.unit_runs)
        random_offsets = round_chunk_offsets(schedule.random,
                                             self.config.unit_runs)
        fixed_start = schedule.fixed[round_index - 1] if round_index else 0
        random_start = schedule.random[round_index - 1] if round_index else 0
        units = []
        for rep_index in plan.get("rep_indices", []):
            units.extend(round_evidence_units(
                state.cid, spec, "fixed", rep_index, fixed_start,
                schedule.fixed[round_index], self.config.unit_runs,
                fixed_offsets[round_index]))
        units.extend(round_evidence_units(
            state.cid, spec, "random", -1, random_start,
            schedule.random[round_index], self.config.unit_runs,
            random_offsets[round_index]))
        return units

    def _mirror_coalesced(self) -> None:
        for state in self.campaigns.values():
            if state.coalesced_into is None:
                continue
            primary = self.campaigns.get(state.coalesced_into)
            if primary is None:
                continue
            state.stage = primary.stage
            state.plan = primary.plan
            state.report = primary.report
            state.error = primary.error

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def status(self, cid: Optional[str] = None) -> Dict:
        if cid is not None:
            state = self.campaigns.get(cid)
            if state is None:
                raise KeyError(f"unknown campaign {cid!r}")
            return self._status_row(state)
        rows = {c: self._status_row(s) for c, s in self.campaigns.items()}
        fleet = {}
        if self.fleet is not None:
            fleet = {"live_workers": self.fleet.live_workers(),
                     "spawned": self.fleet.spawned,
                     "restarts": self.fleet.restarts}
        return {"campaigns": rows, "fleet": fleet,
                "tenants": self._tenant_rows(),
                "events": [event.to_dict() for event in self.events]}

    def _status_row(self, state: CampaignState) -> Dict:
        return {"cid": state.cid, "workload": state.workload,
                "tenant": state.tenant,
                "stage": state.stage, "pending_units": len(state.pending),
                "backlog_units": len(state.backlog),
                "coalesced_into": state.coalesced_into,
                "degradations": len(state.degradations),
                "error": state.error, "report": state.report}

    def _tenant_rows(self) -> Dict:
        """Per-tenant admission accounting for ``owl status``."""
        rows: Dict[str, Dict] = {}
        for state in self.campaigns.values():
            row = rows.setdefault(state.tenant, {
                "active_campaigns": 0, "inflight_units": 0,
                "backlog_units": 0,
                "weight": self.config.quota_for(state.tenant).weight})
            if not state.done:
                row["active_campaigns"] += 1
                if state.coalesced_into is None:
                    row["inflight_units"] += len(state.pending)
                    row["backlog_units"] += len(state.backlog)
        return rows

    def results(self, cid: str) -> Dict:
        """The completed campaign's report JSON (resolves coalescing)."""
        state = self.campaigns.get(cid)
        if state is None:
            raise KeyError(f"unknown campaign {cid!r}")
        if state.coalesced_into is not None:
            primary = self.campaigns.get(state.coalesced_into)
            state = primary if primary is not None else state
        if state.stage == STAGE_FAILED:
            return {"cid": cid, "stage": STAGE_FAILED, "error": state.error}
        if state.stage != STAGE_COMPLETE or state.report is None:
            return {"cid": cid, "stage": state.stage}
        store = TraceStore(self.store_root)
        report = store.get_report(state.report["report_key"])
        return {"cid": cid, "stage": STAGE_COMPLETE,
                "report_key": state.report["report_key"],
                "has_leaks": state.report.get("has_leaks"),
                "report_json": None if report is None else report.to_json()}

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    def recover(self) -> List[str]:
        """Rebuild scheduler state from queue disk after a restart.

        Re-walks each persisted campaign from the first stage; enqueue is
        a no-op for units whose results survived, so completed stages
        fast-forward on the next ticks instead of re-running.
        """
        import dataclasses

        recovered = []
        specs = self.queue.load_campaigns()
        for cid in sorted(specs):
            if cid in self.campaigns:
                continue
            spec = specs[cid]
            config = OwlConfig(**spec["config"])
            state = CampaignState(
                cid=cid, workload=spec["workload"],
                config_dict=dataclasses.asdict(config),
                identity=campaign_identity(spec["workload"], config),
                tenant=spec.get("tenant", DEFAULT_TENANT),
                submitted_at=time.time())
            self.campaigns[cid] = state
            seq = int(cid[1:]) if cid[1:].isdigit() else 0
            self._seq = max(self._seq, seq)
            coalesced_into = spec.get("coalesced_into")
            if coalesced_into is not None:
                state.coalesced_into = coalesced_into
            else:
                self._by_identity[state.identity] = cid
                self._start(state)
            self.queue.journal("recovered", campaign=cid)
            recovered.append(cid)
        return recovered
