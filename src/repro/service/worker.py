"""The fleet worker: claim → execute → report, forever — on any host.

Runnable as ``python -m repro.service.worker --queue DIR --store DIR``
(or ``owl worker``); the :class:`~repro.service.fleet.WorkerFleet`
spawns these as local subprocesses, but the loop is an ordinary function
so tests can drive it in-process — and because the queue and store are
pure atomic-rename / ``O_EXCL`` directories, a worker on *another host*
joins the same fleet by pointing at the shared (e.g. NFS-mounted)
queue/store paths.  Nothing else to configure: worker ids default to
``<hostname>-<pid>`` so hosts never collide, and results land through
the same tmp+rename discipline the local fleet uses.

Protocol per unit: win the ``O_EXCL`` claim, heartbeat it *continuously*
from a background thread (every quarter lease) while executing against
the shared store, write the result tmp+rename, release the claim.
Long-running units on slow hosts therefore never lose their lease
mid-execution; a worker *death* stops the heartbeat, which the
scheduler notices — dead process or silent lease — and re-queues.
Worker-code exceptions become ``error`` results (the scheduler treats
those as real bugs and fails the campaign, mirroring
:class:`~repro.resilience.supervisor.ChunkSupervisor`).

``--die-after N`` is the fleet-level fault injection: exit hard right
after winning the Nth claim, before executing it.  That is the worst
crash point (the lease is held, no result exists), exactly what the
re-queue path must survive.
"""

from __future__ import annotations

import argparse
import os
import socket
import threading
import time
from typing import Optional

from repro.service.execute import execute_unit
from repro.service.queue import JobQueue

#: Fraction of the lease window between heartbeats while executing.
HEARTBEAT_FRACTION = 0.25


def default_worker_id() -> str:
    """``<hostname>-<pid>``: unique across a shared-filesystem fleet."""
    host = socket.gethostname().split(".")[0] or "host"
    return f"{host}-{os.getpid()}"


class _Heartbeat:
    """Touch a held claim every quarter lease until stopped.

    A daemon thread, so a crashing worker stops heartbeating the instant
    it dies — the lease expiry is the scheduler's death signal and must
    not outlive the process.
    """

    def __init__(self, queue: JobQueue, uid: str,
                 lease_seconds: float) -> None:
        self.queue = queue
        self.uid = uid
        self.interval = max(lease_seconds * HEARTBEAT_FRACTION, 0.02)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self.queue.heartbeat(self.uid)
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self.interval + 1.0)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.queue.heartbeat(self.uid)


def worker_loop(queue_root, store_root, worker_id: Optional[str] = None,
                poll_seconds: float = 0.05,
                lease_seconds: float = 30.0,
                die_after: Optional[int] = None,
                max_loops: Optional[int] = None) -> int:
    """Run the claim/execute loop until the queue's STOP sentinel appears.

    Returns the number of units executed.  ``max_loops`` bounds idle
    polling for in-process tests.  ``lease_seconds`` must match the
    scheduler's setting: the worker heartbeats held claims at a quarter
    of it while executing.
    """
    queue = JobQueue(queue_root)
    worker_id = worker_id or default_worker_id()
    executed = 0
    claimed = 0
    loops = 0
    while not queue.stop_requested():
        progressed = False
        for uid in queue.pending_units():
            if queue.stop_requested():
                break
            if not queue.claim(uid, worker_id):
                continue
            claimed += 1
            if die_after is not None and claimed >= die_after:
                # injected death: hard exit with the lease still held
                os._exit(3)
            unit = queue.load_unit(uid)
            if unit is None:  # re-queue race: spec rewritten under us
                queue.release(uid)
                continue
            with _Heartbeat(queue, uid, lease_seconds):
                try:
                    payload = execute_unit(unit, store_root)
                except BaseException as error:  # noqa: BLE001 — to scheduler
                    queue.fail(uid, f"{type(error).__name__}: {error}",
                               worker_id)
                else:
                    queue.complete(uid, payload, worker_id)
            executed += 1
            progressed = True
        if not progressed:
            loops += 1
            if max_loops is not None and loops >= max_loops:
                break
            time.sleep(poll_seconds)
    return executed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.worker",
        description="detection-service fleet worker process; point "
                    "--queue/--store at a shared directory to join a "
                    "fleet from any host")
    parser.add_argument("--queue", required=True, help="job queue directory")
    parser.add_argument("--store", required=True,
                        help="shared trace store directory")
    parser.add_argument("--worker-id", default=None,
                        help="unique worker name "
                             "(default: <hostname>-<pid>)")
    parser.add_argument("--poll", type=float, default=0.05)
    parser.add_argument("--lease-seconds", type=float, default=30.0,
                        help="the scheduler's lease window; held claims "
                             "are heartbeated at a quarter of this")
    parser.add_argument("--die-after", type=int, default=None,
                        help="fault injection: exit after the Nth claim")
    args = parser.parse_args(argv)
    worker_loop(args.queue, args.store, args.worker_id,
                poll_seconds=args.poll, lease_seconds=args.lease_seconds,
                die_after=args.die_after)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
