"""The fleet worker: claim → execute → report, forever.

Runnable as ``python -m repro.service.worker --queue DIR --store DIR
--worker-id NAME``; the :class:`~repro.service.fleet.WorkerFleet` spawns
these as subprocesses, but the loop is an ordinary function so tests can
drive it in-process too.

Protocol per unit: win the ``O_EXCL`` claim, heartbeat it, execute the
unit against the shared store, write the result tmp+rename, release the
claim.  Worker-code exceptions become ``error`` results (the scheduler
treats those as real bugs and fails the campaign, mirroring
:class:`~repro.resilience.supervisor.ChunkSupervisor`); a worker *death*
leaves the claim behind, which the scheduler notices — dead process or
silent lease — and re-queues.

``--die-after N`` is the fleet-level fault injection: exit hard right
after winning the Nth claim, before executing it.  That is the worst
crash point (the lease is held, no result exists), exactly what the
re-queue path must survive.
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Optional

from repro.service.execute import execute_unit
from repro.service.queue import JobQueue


def worker_loop(queue_root, store_root, worker_id: str,
                poll_seconds: float = 0.05,
                die_after: Optional[int] = None,
                max_loops: Optional[int] = None) -> int:
    """Run the claim/execute loop until the queue's STOP sentinel appears.

    Returns the number of units executed.  ``max_loops`` bounds idle
    polling for in-process tests.
    """
    queue = JobQueue(queue_root)
    executed = 0
    claimed = 0
    loops = 0
    while not queue.stop_requested():
        progressed = False
        for uid in queue.pending_units():
            if queue.stop_requested():
                break
            if not queue.claim(uid, worker_id):
                continue
            claimed += 1
            if die_after is not None and claimed >= die_after:
                # injected death: hard exit with the lease still held
                os._exit(3)
            unit = queue.load_unit(uid)
            if unit is None:  # re-queue race: spec rewritten under us
                queue.release(uid)
                continue
            queue.heartbeat(uid)
            try:
                payload = execute_unit(unit, store_root)
            except BaseException as error:  # noqa: BLE001 — ships to scheduler
                queue.fail(uid, f"{type(error).__name__}: {error}", worker_id)
            else:
                queue.complete(uid, payload, worker_id)
            executed += 1
            progressed = True
        if not progressed:
            loops += 1
            if max_loops is not None and loops >= max_loops:
                break
            time.sleep(poll_seconds)
    return executed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.worker",
        description="detection-service fleet worker process")
    parser.add_argument("--queue", required=True, help="job queue directory")
    parser.add_argument("--store", required=True,
                        help="shared trace store directory")
    parser.add_argument("--worker-id", required=True)
    parser.add_argument("--poll", type=float, default=0.05)
    parser.add_argument("--die-after", type=int, default=None,
                        help="fault injection: exit after the Nth claim")
    args = parser.parse_args(argv)
    worker_loop(args.queue, args.store, args.worker_id,
                poll_seconds=args.poll, die_after=args.die_after)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
