"""Execute one work unit against the shared store, in any process.

Every unit kind re-materialises its campaign from the JSON spec — the
workload registry provides the program and input factories, the config
dict round-trips through :class:`~repro.core.pipeline.OwlConfig` — and
then runs a *slice* of the normal pipeline, persisting its output through
the same campaign key builders ``Owl.detect`` uses:

* ``trace``    — record + store the traces of a subset of user inputs;
* ``plan``     — filter cached traces, decide early-exit vs. which
  representatives need evidence;
* ``evidence`` — record runs ``[start, stop)`` of one side into a chunk
  blob (inputs re-derived from the seeded generator, so every worker
  draws the same sequence);
* ``fold``     — merge one side's chunks in order through
  ``Evidence.merge`` and persist the canonical evidence;
* ``report``   — run ``Owl.detect`` against the now-warm store.  Bit
  identity with a direct in-process detection is inherited from the
  store's warm ≡ cold contract rather than re-proven here.

Units are idempotent: each kind first checks the store for its own
output and returns a cache note instead of re-doing work, so re-queued
units (after a worker death) and coalesced campaigns cost nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps.registry import resolve
from repro.core import adaptive as sequential
from repro.core.evidence import Evidence
from repro.core.pipeline import Owl, OwlConfig, PhaseStats
from repro.errors import CampaignError
from repro.resilience.events import collecting_degradations
from repro.service.units import (
    KIND_DECIDE, KIND_EVIDENCE, KIND_FOLD, KIND_PLAN, KIND_REPORT,
    KIND_TRACE, WorkUnit)
from repro.store.serialize import deserialize_evidence, serialize_evidence
from repro.store.campaign import Campaign
from repro.store.store import TraceStore

#: fixed-side chunk blobs live under this kind (collected once folded)
CHUNK_KIND = "checkpoint"


def chunk_key(cid: str, side: str, rep_fp: str, chunk: int) -> str:
    """Store key of one evidence chunk (service-private namespace)."""
    return f"servicechunk/{cid}/{side}/{rep_fp}/{chunk:04d}"


def materialize(spec: Dict, store: TraceStore
                ) -> Tuple[Owl, Campaign, List[object], object]:
    """Spec dict → (owl, campaign, fixed inputs, random-input fn)."""
    program, fixed_inputs, random_input = resolve(spec["workload"])
    config = OwlConfig(**spec["config"])
    owl = Owl(program, name=spec["workload"], config=config)
    campaign = Campaign(store, owl.name, config, owl.device_config)
    return owl, campaign, list(fixed_inputs()), random_input


def _rep_fp(campaign: Campaign, inputs: List[object],
            side: str, rep_index: int) -> str:
    return ("random" if side == "random"
            else campaign.input_fingerprint(inputs[rep_index]))


def _side_values(owl: Owl, inputs: List[object], random_input,
                 side: str, rep_index: int) -> List[object]:
    """The side's full deterministic run-input sequence (parent draw)."""
    if side == "fixed":
        return [inputs[rep_index]] * owl.config.fixed_runs
    rng = np.random.default_rng(owl.config.seed)
    return [random_input(rng) for _ in range(owl.config.random_runs)]


def execute_unit(unit: WorkUnit, store_root) -> Dict:
    """Run one unit; returns its JSON-safe result payload.

    Opens a fresh :class:`TraceStore` per execution so the manifest
    journal replay makes every other worker's completed writes visible.
    """
    store = TraceStore(store_root)
    with collecting_degradations() as log:
        payload = _dispatch(unit, store)
    payload["degradations"] = log.to_list()
    return payload


def _dispatch(unit: WorkUnit, store: TraceStore) -> Dict:
    if unit.kind == KIND_TRACE:
        return _run_trace(unit, store)
    if unit.kind == KIND_PLAN:
        return _run_plan(unit, store)
    if unit.kind == KIND_EVIDENCE:
        return _run_evidence(unit, store)
    if unit.kind == KIND_DECIDE:
        return _run_decide(unit, store)
    if unit.kind == KIND_FOLD:
        return _run_fold(unit, store)
    if unit.kind == KIND_REPORT:
        return _run_report(unit, store)
    raise CampaignError(f"unknown work unit kind {unit.kind!r}")


def _run_trace(unit: WorkUnit, store: TraceStore) -> Dict:
    owl, campaign, inputs, _random = materialize(unit.spec, store)
    stats = PhaseStats()
    index = int(unit.params["index"])
    owl.record_traces([inputs[index]], stats=stats, campaign=campaign)
    return {"recorded": stats.trace_count, "cached": stats.cached_traces}


def _run_plan(unit: WorkUnit, store: TraceStore) -> Dict:
    """Filter traces (all cached by the trace stage) into the run plan."""
    owl, campaign, inputs, _random = materialize(unit.spec, store)
    stats = PhaseStats()
    traces = owl.record_traces(inputs, stats=stats, campaign=campaign)
    filter_result = owl.filter_inputs(inputs, traces)
    early_exit = (not filter_result.shows_potential_leakage
                  and not owl.config.always_analyze)
    representatives = filter_result.representatives()
    if not owl.config.analyze_all_representatives:
        representatives = representatives[:1]
    fps = [campaign.input_fingerprint(value) for value in inputs]
    rep_indices = [fps.index(campaign.input_fingerprint(rep))
                   for rep in representatives]
    return {"early_exit": early_exit, "rep_indices": rep_indices,
            "num_classes": filter_result.num_classes,
            "cached_traces": stats.cached_traces}


def _run_evidence(unit: WorkUnit, store: TraceStore) -> Dict:
    owl, campaign, inputs, random_input = materialize(unit.spec, store)
    side = str(unit.params["side"])
    rep_index = int(unit.params["rep_index"])
    start, stop = int(unit.params["start"]), int(unit.params["stop"])
    rep_fp = _rep_fp(campaign, inputs, side, rep_index)
    if store.get(campaign.evidence_key(side, rep_fp)) is not None:
        return {"runs": 0, "cached_side": True}  # side already folded
    key = chunk_key(unit.campaign, side, rep_fp, int(unit.params["chunk"]))
    if store.get(key) is not None:
        return {"runs": 0, "cached_chunk": True}  # re-queued after a crash
    values = _side_values(owl, inputs, random_input, side,
                          rep_index)[start:stop]
    keep_per_run = owl.config.sampling == "per_run"
    partial, chunk_stats = owl.pool.record_evidence(
        values, keep_per_run=keep_per_run)
    store.put_evidence(
        key, partial, kind=CHUNK_KIND,
        meta={"workload": owl.name, "campaign": unit.campaign,
              "side": side, "start": start, "stop": stop,
              "seed": owl.config.seed})
    return {"runs": len(values),
            "trace_seconds": chunk_stats.trace_seconds_total}


def _run_decide(unit: WorkUnit, store: TraceStore) -> Dict:
    """One adaptive look: merge, checkpoint, analyse, stop-or-continue.

    Merges every side's chunks (rounds 0..r, in ordinal order) to the
    round boundary, persists the result through the campaign checkpoint
    path — the same canonical form the in-process adaptive loop leaves
    behind — then replays :func:`repro.core.adaptive.evaluate_round`.
    The decision is a pure function of the evidence prefix, so a
    re-queued decide unit (after a worker death) recomputes it
    bit-identically; on the final round the sides complete through
    ``save_evidence`` and the chunks are collected, replacing the
    classic fold stage.
    """
    owl, campaign, inputs, _random = materialize(unit.spec, store)
    config = owl.config
    schedule = sequential.round_schedule(
        config.fixed_runs, config.random_runs, config.adaptive_rounds)
    round_index = int(unit.params["round"])
    final = round_index == schedule.num_rounds - 1
    rep_indices = [int(index) for index in unit.params["rep_indices"]]
    side_plan = [("fixed", rep_index, schedule.fixed[round_index],
                  config.fixed_runs, int(unit.params["fixed_chunks"]))
                 for rep_index in rep_indices]
    side_plan.append(("random", -1, schedule.random[round_index],
                      config.random_runs, int(unit.params["random_chunks"])))
    evidences = {}
    all_chunk_keys = []
    for side, rep_index, boundary, total_runs, num_chunks in side_plan:
        rep_fp = _rep_fp(campaign, inputs, side, rep_index)
        evidence_key = campaign.evidence_key(side, rep_fp)
        keys = [chunk_key(unit.campaign, side, rep_fp, chunk)
                for chunk in range(num_chunks)]
        all_chunk_keys.extend(keys)
        if store.get(evidence_key) is not None:
            # the final round already completed (crash between its
            # save_evidence and this result landing): nothing to decide,
            # the report unit degrades to the warm full-budget path
            return {"stop": True, "final": True, "round": round_index,
                    "cached_side": True}
        merged: Optional[Evidence] = None
        for key in keys:
            chunk_evidence = store.get_evidence(key)
            merged = (chunk_evidence if merged is None
                      else merged.merge(chunk_evidence))
        if merged is None:
            merged = Evidence(keep_per_run=config.sampling == "per_run")
        if final:
            merged = campaign.save_evidence(evidence_key, merged, side)
        else:
            campaign.save_checkpoint(evidence_key, merged, boundary,
                                     total_runs, side)
            merged = deserialize_evidence(serialize_evidence(merged))
        evidences[(side, rep_index)] = merged
    _reports, decision = sequential.evaluate_round(
        owl.analyzers,
        [evidences[("fixed", rep_index)] for rep_index in rep_indices],
        evidences[("random", -1)], program_name=owl.name,
        alpha=1.0 - config.confidence, rho=config.adaptive_alpha_spend,
        schedule=schedule, round_index=round_index)
    if decision.stop:
        with store.batch():
            for key in all_chunk_keys:
                store.delete(key)
    return {"stop": decision.stop, "final": final, "round": round_index,
            "tested": decision.tested, "flagged": decision.flagged,
            "clean": decision.clean, "undecided": decision.undecided,
            "fixed_boundary": decision.fixed_boundary,
            "random_boundary": decision.random_boundary}


def _run_fold(unit: WorkUnit, store: TraceStore) -> Dict:
    owl, campaign, inputs, _random = materialize(unit.spec, store)
    side = str(unit.params["side"])
    rep_index = int(unit.params["rep_index"])
    num_chunks = int(unit.params["num_chunks"])
    rep_fp = _rep_fp(campaign, inputs, side, rep_index)
    evidence_key = campaign.evidence_key(side, rep_fp)
    keys = [chunk_key(unit.campaign, side, rep_fp, chunk)
            for chunk in range(num_chunks)]
    if store.get(evidence_key) is not None:
        with store.batch():
            for key in keys:
                store.delete(key)
        return {"runs": 0, "cached_side": True}
    merged: Optional[Evidence] = None
    for key in keys:
        chunk_evidence = store.get_evidence(key)
        merged = (chunk_evidence if merged is None
                  else merged.merge(chunk_evidence))
    if merged is None:
        merged = Evidence(keep_per_run=owl.config.sampling == "per_run")
    campaign.save_evidence(evidence_key, merged, side)
    with store.batch():
        for key in keys:
            store.delete(key)
    return {"runs": merged.num_runs}


def _run_report(unit: WorkUnit, store: TraceStore) -> Dict:
    """The terminal unit: a normal detection against the warm store."""
    owl, campaign, inputs, random_input = materialize(unit.spec, store)
    result = owl.detect(inputs, random_input=random_input, store=store)
    inputs_fp = campaign.inputs_fingerprint(
        [campaign.input_fingerprint(value) for value in inputs])
    return {"report_key": campaign.report_key(inputs_fp),
            "has_leaks": result.report.has_leaks,
            "num_leaks": len(result.report.leaks),
            "leak_free_by_filtering": result.leak_free_by_filtering,
            "cached_traces": result.stats.cached_traces,
            "cached_runs": result.stats.cached_runs,
            "report_cache_hit": result.stats.report_cache_hit,
            "total_seconds": result.stats.total_seconds}
