"""Durable work units: the currency of the detection service.

One submitted campaign decomposes into a DAG of small, restartable JSON
specs — per-input trace jobs, one filter/plan job, per-chunk evidence
jobs, per-side fold jobs, one report job — that any worker process can
execute given only the shared :class:`~repro.store.store.TraceStore`.
Units reference programs *by name* through
:mod:`repro.apps.registry`, so a spec is re-materialisable anywhere; all
heavy payloads (traces, evidence, reports) travel through the store, and
a unit's queue result carries only accounting.

Determinism is inherited, not re-implemented: an evidence unit re-derives
its run inputs from ``np.random.default_rng(config.seed)`` exactly as
``Owl.collect_evidence`` does and records the slice ``[start, stop)``, so
any ``unit_runs`` partition folds — through the associative
:meth:`~repro.core.evidence.Evidence.merge`, in chunk order — to the
bytes one in-process ``Owl.detect`` would have produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

#: Unit kinds, in stage order.
KIND_TRACE = "trace"
KIND_PLAN = "plan"
KIND_EVIDENCE = "evidence"
KIND_DECIDE = "decide"
KIND_FOLD = "fold"
KIND_REPORT = "report"

#: Stage machine: which kinds a campaign schedules, in which order.
#: (``decide`` only appears in adaptive campaigns, ``fold`` only in
#: classic ones — the scheduler picks the path per config.)
STAGES = (KIND_TRACE, KIND_PLAN, KIND_EVIDENCE, KIND_DECIDE, KIND_FOLD,
          KIND_REPORT)


@dataclass
class WorkUnit:
    """One durable job: ``(campaign spec, kind, coordinates)``.

    ``spec`` is the campaign identity every unit carries — the workload
    name and the ``OwlConfig`` dict — and ``params`` the kind-specific
    coordinates (input indices, run slice, chunk ordinals).  ``attempts``
    counts fleet dispatches; the scheduler bumps it on every re-queue and
    degrades the unit to in-process execution past the budget.
    """

    uid: str
    kind: str
    campaign: str
    spec: Dict = field(default_factory=dict)
    params: Dict = field(default_factory=dict)
    attempts: int = 0

    def to_dict(self) -> Dict:
        return {"uid": self.uid, "kind": self.kind,
                "campaign": self.campaign, "spec": dict(self.spec),
                "params": dict(self.params), "attempts": self.attempts}

    @classmethod
    def from_dict(cls, data: Dict) -> "WorkUnit":
        return cls(uid=str(data["uid"]), kind=str(data["kind"]),
                   campaign=str(data["campaign"]),
                   spec=dict(data.get("spec", {})),
                   params=dict(data.get("params", {})),
                   attempts=int(data.get("attempts", 0)))


# ----------------------------------------------------------------------
# unit builders (the scheduler's decomposition)
# ----------------------------------------------------------------------


def trace_units(cid: str, spec: Dict, num_inputs: int) -> List[WorkUnit]:
    """One phase-1 unit per user input (each records + persists a trace)."""
    return [WorkUnit(uid=f"{cid}.trace.{index:04d}", kind=KIND_TRACE,
                     campaign=cid, spec=spec, params={"index": index})
            for index in range(num_inputs)]


def plan_unit(cid: str, spec: Dict, num_inputs: int) -> WorkUnit:
    """The phase-2 unit: filter cached traces, pick representatives."""
    return WorkUnit(uid=f"{cid}.plan", kind=KIND_PLAN, campaign=cid,
                    spec=spec, params={"num_inputs": num_inputs})


def evidence_units(cid: str, spec: Dict, side: str, rep_index: int,
                   total_runs: int, unit_runs: int) -> List[WorkUnit]:
    """Contiguous run-slice units for one evidence side.

    ``rep_index`` indexes the campaign's input list for the fixed side
    and is ``-1`` for the shared random side.  Chunks are numbered in run
    order; the fold unit merges them by that ordinal.
    """
    units = []
    chunk = 0
    for start in range(0, total_runs, unit_runs):
        stop = min(start + unit_runs, total_runs)
        units.append(WorkUnit(
            uid=f"{cid}.evidence.{side}.{rep_index}.{chunk:04d}",
            kind=KIND_EVIDENCE, campaign=cid, spec=spec,
            params={"side": side, "rep_index": rep_index, "chunk": chunk,
                    "start": start, "stop": stop}))
        chunk += 1
    return units


def round_chunk_offsets(boundaries, unit_runs: int) -> List[int]:
    """Cumulative chunk ordinals at each adaptive round boundary.

    ``offsets[r]`` is the first chunk ordinal of round ``r``'s slice and
    ``offsets[r + 1]`` the total number of chunks once round ``r`` has
    recorded — the adaptive analogue of ``_num_chunks`` for the classic
    single-slice partition.  Round slices are partitioned by
    ``unit_runs`` *within* each round, so the partition always respects
    round boundaries: no unit ever spans an interim look.
    """
    offsets = [0]
    previous = 0
    for boundary in boundaries:
        runs = boundary - previous
        offsets.append(offsets[-1] + (runs + unit_runs - 1) // unit_runs)
        previous = boundary
    return offsets


def round_evidence_units(cid: str, spec: Dict, side: str, rep_index: int,
                         start: int, stop: int, unit_runs: int,
                         first_chunk: int) -> List[WorkUnit]:
    """Evidence units for one adaptive round's slice ``[start, stop)``.

    Chunk ordinals continue sequentially across rounds (via
    *first_chunk* from :func:`round_chunk_offsets`), so the decide unit
    merges every round recorded so far in one deterministic order.
    """
    units = []
    chunk = first_chunk
    for chunk_start in range(start, stop, unit_runs):
        chunk_stop = min(chunk_start + unit_runs, stop)
        units.append(WorkUnit(
            uid=f"{cid}.evidence.{side}.{rep_index}.{chunk:04d}",
            kind=KIND_EVIDENCE, campaign=cid, spec=spec,
            params={"side": side, "rep_index": rep_index, "chunk": chunk,
                    "start": chunk_start, "stop": chunk_stop}))
        chunk += 1
    return units


def decide_unit(cid: str, spec: Dict, round_index: int,
                rep_indices: List[int], fixed_chunks: int,
                random_chunks: int) -> WorkUnit:
    """One adaptive look: merge every side's chunks to the round
    boundary, checkpoint, analyse, and decide stop-vs-continue."""
    return WorkUnit(uid=f"{cid}.decide.{round_index:02d}",
                    kind=KIND_DECIDE, campaign=cid, spec=spec,
                    params={"round": round_index,
                            "rep_indices": list(rep_indices),
                            "fixed_chunks": fixed_chunks,
                            "random_chunks": random_chunks})


def fold_unit(cid: str, spec: Dict, side: str, rep_index: int,
              num_chunks: int) -> WorkUnit:
    """Merge one side's chunks (in order) into its canonical evidence."""
    return WorkUnit(uid=f"{cid}.fold.{side}.{rep_index}", kind=KIND_FOLD,
                    campaign=cid, spec=spec,
                    params={"side": side, "rep_index": rep_index,
                            "num_chunks": num_chunks})


def report_unit(cid: str, spec: Dict, num_inputs: int) -> WorkUnit:
    """The terminal unit: ``Owl.detect`` against the pre-warmed store."""
    return WorkUnit(uid=f"{cid}.report", kind=KIND_REPORT, campaign=cid,
                    spec=spec, params={"num_inputs": num_inputs})
