"""Operational configuration of the detection service.

Everything here is fleet plumbing — worker counts, lease lengths, retry
budgets, unit sizing.  None of it may influence report bytes: the
scheduler decomposes campaigns into work units whose results fold through
:meth:`~repro.core.evidence.Evidence.merge` bit-identically at any
setting, so :class:`ServiceConfig` is to the fleet what ``workers`` /
``retry`` are to one ``Owl.detect`` call — excluded from every store
fingerprint by construction (it never reaches one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class ServiceConfig:
    """Fleet-level knobs for ``owl serve`` and the campaign scheduler."""

    #: worker processes to spawn; 0 executes every unit in the scheduler
    #: process (useful for tests and one-core hosts — same results)
    workers: int = 2
    #: phase-3 runs per evidence work unit (the fleet's chunk size; any
    #: value produces bit-identical evidence, smaller units spread wider)
    unit_runs: int = 25
    #: seconds a worker may hold a claimed unit without heartbeat before
    #: the scheduler revokes the lease and re-queues the unit
    lease_seconds: float = 30.0
    #: scheduler/worker poll cadence
    poll_seconds: float = 0.05
    #: fleet dispatch attempts per unit before it degrades to running
    #: inside the scheduler process (the ladder's terminal rung)
    max_attempts: int = 3
    #: worker-process restarts the fleet will pay before letting pending
    #: units fall through to in-scheduler execution
    restart_budget: int = 8
    #: coalesce submissions that resolve to the same (workload, analysis
    #: fingerprint, inputs) into one execution — the multi-tenant
    #: amortization that shares warm-store hits across clients
    coalesce: bool = True
    #: fault injection: each *initially spawned* worker exits, leaving its
    #: claim behind, right before executing its Nth claimed unit
    #: (replacement workers spawn without the fault, so the campaign
    #: completes).  Mirrors ``FaultPlan``'s worker_crash at fleet level.
    die_after: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or isinstance(
                self.workers, bool) or self.workers < 0:
            raise ConfigError(
                f"workers must be an int >= 0, got {self.workers!r}")
        for name in ("unit_runs", "max_attempts"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ConfigError(
                    f"{name} must be a positive int, got {value!r}")
        if self.restart_budget < 0:
            raise ConfigError(
                f"restart_budget must be >= 0, got {self.restart_budget!r}")
        for name in ("lease_seconds", "poll_seconds"):
            value = getattr(self, name)
            if not value > 0:
                raise ConfigError(
                    f"{name} must be positive, got {value!r}")
        if self.die_after is not None and self.die_after < 1:
            raise ConfigError(
                f"die_after must be a positive int or None, got "
                f"{self.die_after!r}")
