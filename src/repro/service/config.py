"""Operational configuration of the detection service.

Everything here is fleet plumbing — worker counts, lease lengths, retry
budgets, unit sizing, tenant admission.  None of it may influence report
bytes: the scheduler decomposes campaigns into work units whose results
fold through :meth:`~repro.core.evidence.Evidence.merge` bit-identically
at any setting, so :class:`ServiceConfig` is to the fleet what
``workers`` / ``retry`` are to one ``Owl.detect`` call — excluded from
every store fingerprint by construction (it never reaches one).

Tenancy knobs live here too: a :class:`TenantQuota` bounds how much of
the fleet one tenant may hold at once (campaigns, in-flight units) and
weights the fair-admission stride; quotas shape *when* units run, never
*what* they compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class TenantQuota:
    """Admission bounds for one tenant (``None`` means unlimited).

    ``max_campaigns`` caps in-flight (non-terminal) campaigns per tenant
    — exceeding it rejects the submission with a
    :class:`~repro.errors.QuotaError` (HTTP 429).  ``max_inflight`` caps
    the tenant's units admitted to the queue at once; excess units wait
    in the scheduler's backlog and are admitted by weighted fair stride
    as earlier ones finish.  ``weight`` scales the tenant's share of
    admission slots when the fleet is contended (2.0 admits twice as
    often as 1.0).
    """

    max_campaigns: Optional[int] = None
    max_inflight: Optional[int] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        for name in ("max_campaigns", "max_inflight"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ConfigError(
                    f"{name} must be a positive int or None, got {value!r}")
        if not self.weight > 0:
            raise ConfigError(
                f"weight must be positive, got {self.weight!r}")

    @classmethod
    def parse(cls, text: str) -> "TenantQuota":
        """``"max_inflight:4,max_campaigns:2,weight:0.5"`` → a quota."""
        fields: Dict[str, object] = {}
        for part in str(text).split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition(":")
            key = key.strip()
            if not sep or key not in ("max_campaigns", "max_inflight",
                                      "weight"):
                raise ConfigError(
                    f"quota field {part!r} is not KEY:VALUE with KEY one of "
                    f"max_campaigns, max_inflight, weight")
            try:
                fields[key] = (float(raw) if key == "weight"
                               else int(raw))
            except ValueError:
                raise ConfigError(
                    f"quota field {key} takes a number, got {raw!r}")
        return cls(**fields)


@dataclass(frozen=True)
class ServiceConfig:
    """Fleet-level knobs for ``owl serve`` and the campaign scheduler."""

    #: worker processes to spawn; 0 executes every unit in the scheduler
    #: process (useful for tests and one-core hosts — same results)
    workers: int = 2
    #: phase-3 runs per evidence work unit (the fleet's chunk size; any
    #: value produces bit-identical evidence, smaller units spread wider)
    unit_runs: int = 25
    #: seconds a worker may hold a claimed unit without heartbeat before
    #: the scheduler revokes the lease and re-queues the unit.  Workers
    #: heartbeat at a quarter of this while executing, so on a shared
    #: (NFS) queue size it to at least 4x the filesystem's attribute
    #: propagation delay
    lease_seconds: float = 30.0
    #: scheduler/worker poll cadence
    poll_seconds: float = 0.05
    #: fleet dispatch attempts per unit before it degrades to running
    #: inside the scheduler process (the ladder's terminal rung)
    max_attempts: int = 3
    #: worker-process restarts the fleet will pay before letting pending
    #: units fall through to in-scheduler execution
    restart_budget: int = 8
    #: coalesce submissions that resolve to the same (workload, analysis
    #: fingerprint, inputs) into one execution — the multi-tenant
    #: amortization that shares warm-store hits across clients
    coalesce: bool = True
    #: fault injection: each *initially spawned* worker exits, leaving its
    #: claim behind, right before executing its Nth claimed unit
    #: (replacement workers spawn without the fault, so the campaign
    #: completes).  Mirrors ``FaultPlan``'s worker_crash at fleet level.
    die_after: Optional[int] = None
    #: per-tenant admission quotas (tenant name → :class:`TenantQuota`);
    #: tenants not listed fall back to ``default_quota``
    quotas: Optional[Dict[str, TenantQuota]] = None
    #: quota for tenants without an explicit entry (None → unlimited)
    default_quota: Optional[TenantQuota] = None
    #: fleet-wide cap on units admitted to the queue at once; when set,
    #: backlogged tenants are interleaved by weighted fair stride instead
    #: of first-submitted-drains-first (None preserves admit-everything)
    admission_window: Optional[int] = None
    #: workers attach from other hosts against the shared queue/store
    #: directory: the scheduler never executes pending units itself
    #: (lease-expiry degradation past ``max_attempts`` still does, so a
    #: fleetless deployment cannot wedge on a dead remote worker)
    external_workers: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or isinstance(
                self.workers, bool) or self.workers < 0:
            raise ConfigError(
                f"workers must be an int >= 0, got {self.workers!r}")
        for name in ("unit_runs", "max_attempts"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ConfigError(
                    f"{name} must be a positive int, got {value!r}")
        if self.restart_budget < 0:
            raise ConfigError(
                f"restart_budget must be >= 0, got {self.restart_budget!r}")
        for name in ("lease_seconds", "poll_seconds"):
            value = getattr(self, name)
            if not value > 0:
                raise ConfigError(
                    f"{name} must be positive, got {value!r}")
        if self.die_after is not None and self.die_after < 1:
            raise ConfigError(
                f"die_after must be a positive int or None, got "
                f"{self.die_after!r}")
        if self.admission_window is not None and self.admission_window < 1:
            raise ConfigError(
                f"admission_window must be a positive int or None, got "
                f"{self.admission_window!r}")
        for source in (self.quotas or {}).values():
            if not isinstance(source, TenantQuota):
                raise ConfigError(
                    f"quotas values must be TenantQuota, got {source!r}")
        if self.default_quota is not None and not isinstance(
                self.default_quota, TenantQuota):
            raise ConfigError(
                f"default_quota must be a TenantQuota or None, got "
                f"{self.default_quota!r}")

    def quota_for(self, tenant: str) -> TenantQuota:
        """The effective quota of *tenant* (explicit, default, unlimited)."""
        quota = (self.quotas or {}).get(tenant)
        if quota is not None:
            return quota
        if self.default_quota is not None:
            return self.default_quota
        return _UNLIMITED


_UNLIMITED = TenantQuota()
