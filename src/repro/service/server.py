"""``owl serve``'s front door: JSON-lines over a socket, many clients.

One asyncio event loop multiplexes every connected client (unix-domain
socket by default, TCP with ``tcp://``, the HTTP/JSON front end with
``http://`` — see :mod:`repro.service.http`) against one
:class:`~repro.service.scheduler.CampaignScheduler`.  The socket
protocol is a JSON object per line, ``{"op": ...}`` in, one JSON object
out:

* ``ping``                         → ``{"ok": true, "pong": ...}``
* ``submit {workload, config}``    → ``{"ok": true, "campaign": cid}``
* ``status {campaign?}``           → the scheduler's status dict
* ``results {campaign}``           → report JSON for a completed campaign
* ``watch {campaign}``             → a *stream* of event lines (stage
  transitions, then a terminal line carrying the results payload)
* ``shutdown``                     → stop fleet + server

Requests may carry ``token`` (bearer authentication) and — in open mode
— ``tenant``; dispatch itself lives in
:class:`~repro.service.api.ServiceAPI`, shared verbatim with the HTTP
front end, so the scheduler is transport-agnostic.

Scheduling runs on a background task that calls ``scheduler.tick()``
between awaits, so submissions return immediately and clients poll
``status`` — the CLI's ``owl submit --wait`` does exactly that, and
``owl results --watch`` holds a ``watch`` stream instead.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional

from repro.service.address import (  # noqa: F401 — legacy import site
    Address, format_address, parse_address, parse_connect)
from repro.service.api import ServiceAPI
from repro.service.scheduler import CampaignScheduler


class ServiceServer:
    """Asyncio front end over one scheduler."""

    def __init__(self, scheduler: CampaignScheduler, address: Address,
                 tick_seconds: float = 0.05,
                 tokens: Optional[Dict[str, str]] = None,
                 api: Optional[ServiceAPI] = None) -> None:
        self.scheduler = scheduler
        self.address = address
        self.tick_seconds = tick_seconds
        self.api = api if api is not None else ServiceAPI(
            scheduler, tokens=tokens, poll_seconds=tick_seconds)
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = asyncio.Event()

    # ------------------------------------------------------------------

    async def start(self) -> None:
        kind, target = self.address
        if kind == "unix":
            self._server = await asyncio.start_unix_server(
                self._handle, path=str(target))
        elif kind == "tcp":
            host, port = target  # type: ignore[misc]
            self._server = await asyncio.start_server(
                self._handle, host=host, port=port)
        elif kind == "http":
            from repro.service.http import HttpFrontEnd
            host, port = target  # type: ignore[misc]
            front = HttpFrontEnd(self.api, self._stopping)
            self._server = await asyncio.start_server(
                front.handle, host=host, port=port)
        else:
            raise ValueError(f"unknown address kind {kind!r}")

    async def run(self) -> None:
        """Serve until a client asks for shutdown."""
        if self._server is None:
            await self.start()
        ticker = asyncio.ensure_future(self._tick_loop())
        try:
            await self._stopping.wait()
        finally:
            ticker.cancel()
            self._server.close()
            await self._server.wait_closed()
            if (self.scheduler.fleet is not None
                    or self.scheduler.config.external_workers):
                # the STOP sentinel also reaches workers on other hosts
                self.scheduler.queue.request_stop()
            if self.scheduler.fleet is not None:
                self.scheduler.fleet.stop()

    async def _tick_loop(self) -> None:
        while not self._stopping.is_set():
            self.scheduler.tick()
            await asyncio.sleep(self.tick_seconds)

    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                request = self._decode(line)
                if request is not None and request.get("op") == "watch":
                    if not await self._stream_watch(request, writer):
                        break
                    continue
                response = (self.api.handle(request) if request is not None
                            else {"ok": False, "code": "bad_request",
                                  "error": "malformed JSON request"})
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
                if response.get("_shutdown"):
                    self._stopping.set()
                    break
        except (ConnectionError, OSError):
            pass  # client hung up mid-request; nothing to clean
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _decode(line: bytes) -> Optional[Dict]:
        try:
            request = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return request if isinstance(request, dict) else None

    async def _stream_watch(self, request: Dict,
                            writer: asyncio.StreamWriter) -> bool:
        """Stream one watch request; False when the client went away."""
        try:
            tenant_error = None
            try:
                self.api.authenticate(request.get("token"),
                                      request.get("tenant"))
            except Exception as error:  # noqa: BLE001 — protocol boundary
                from repro.service.api import error_response
                tenant_error = error_response(error)
            if tenant_error is not None:
                writer.write(json.dumps(tenant_error).encode("utf-8")
                             + b"\n")
                await writer.drain()
                return True
            async for event in self.api.watch_events(
                    str(request.get("campaign"))):
                writer.write(json.dumps(event).encode("utf-8") + b"\n")
                await writer.drain()
            return True
        except (ConnectionError, OSError):
            return False  # mid-stream disconnect: drop the stream quietly


def serve_forever(scheduler: CampaignScheduler, address: Address,
                  tick_seconds: float = 0.05,
                  tokens: Optional[Dict[str, str]] = None) -> None:
    """Blocking entry point for ``owl serve`` (any transport kind)."""
    server = ServiceServer(scheduler, address, tick_seconds=tick_seconds,
                           tokens=tokens)

    async def _main() -> None:
        await server.start()
        await server.run()

    asyncio.run(_main())
