"""``owl serve``'s front door: JSON-lines over a socket, many clients.

One asyncio event loop multiplexes every connected client (unix-domain
socket by default, TCP with ``--port``) against one
:class:`~repro.service.scheduler.CampaignScheduler`.  The protocol is a
JSON object per line, ``{"op": ...}`` in, one JSON object out:

* ``ping``                         → ``{"ok": true, "pong": ...}``
* ``submit {workload, config}``    → ``{"ok": true, "campaign": cid}``
* ``status {campaign?}``           → the scheduler's status dict
* ``results {campaign}``           → report JSON for a completed campaign
* ``shutdown``                     → stop fleet + server

Scheduling runs on a background task that calls ``scheduler.tick()``
between awaits, so submissions return immediately and clients poll
``status`` — the CLI's ``owl submit --wait`` does exactly that.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from repro.service.scheduler import CampaignScheduler

#: (kind, target): ("unix", path) or ("tcp", (host, port)).
Address = Tuple[str, object]


def parse_address(socket_path: Optional[str] = None,
                  host: Optional[str] = None,
                  port: Optional[int] = None) -> Address:
    if port is not None:
        return ("tcp", (host or "127.0.0.1", int(port)))
    if socket_path is None:
        raise ValueError("need either a unix socket path or a TCP port")
    return ("unix", str(socket_path))


class ServiceServer:
    """Asyncio front end over one scheduler."""

    def __init__(self, scheduler: CampaignScheduler, address: Address,
                 tick_seconds: float = 0.05) -> None:
        self.scheduler = scheduler
        self.address = address
        self.tick_seconds = tick_seconds
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = asyncio.Event()

    # ------------------------------------------------------------------

    async def start(self) -> None:
        kind, target = self.address
        if kind == "unix":
            self._server = await asyncio.start_unix_server(
                self._handle, path=str(target))
        else:
            host, port = target  # type: ignore[misc]
            self._server = await asyncio.start_server(
                self._handle, host=host, port=port)

    async def run(self) -> None:
        """Serve until a client asks for shutdown."""
        if self._server is None:
            await self.start()
        ticker = asyncio.ensure_future(self._tick_loop())
        try:
            await self._stopping.wait()
        finally:
            ticker.cancel()
            self._server.close()
            await self._server.wait_closed()
            if self.scheduler.fleet is not None:
                self.scheduler.queue.request_stop()
                self.scheduler.fleet.stop()

    async def _tick_loop(self) -> None:
        while not self._stopping.is_set():
            self.scheduler.tick()
            await asyncio.sleep(self.tick_seconds)

    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = self._dispatch(line)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
                if response.get("_shutdown"):
                    self._stopping.set()
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _dispatch(self, line: bytes) -> dict:
        try:
            request = json.loads(line.decode("utf-8"))
            op = request.get("op")
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "submit":
                cid = self.scheduler.submit(
                    request["workload"], request.get("config") or {})
                return {"ok": True, "campaign": cid}
            if op == "status":
                return {"ok": True,
                        "status": self.scheduler.status(
                            request.get("campaign"))}
            if op == "results":
                return {"ok": True,
                        "results": self.scheduler.results(
                            request["campaign"])}
            if op == "shutdown":
                return {"ok": True, "stopping": True, "_shutdown": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as error:  # noqa: BLE001 — protocol boundary
            return {"ok": False,
                    "error": f"{type(error).__name__}: {error}"}


def serve_forever(scheduler: CampaignScheduler, address: Address,
                  tick_seconds: float = 0.05) -> None:
    """Blocking entry point for ``owl serve``."""
    server = ServiceServer(scheduler, address, tick_seconds=tick_seconds)

    async def _main() -> None:
        await server.start()
        await server.run()

    asyncio.run(_main())
