"""The distributed detection service: campaigns sharded across a fleet.

``owl serve`` runs a :class:`~repro.service.scheduler.CampaignScheduler`
behind an asyncio socket front end
(:class:`~repro.service.server.ServiceServer`); tenants submit named
workloads with ``owl submit`` and poll ``owl status`` / ``owl results``.
Campaigns decompose into durable :class:`~repro.service.units.WorkUnit`
specs in a crash-safe :class:`~repro.service.queue.JobQueue`, executed by
a supervised :class:`~repro.service.fleet.WorkerFleet` (or the scheduler
itself at ``workers=0``) against one fleet-safe shared
:class:`~repro.store.store.TraceStore`.  Reports are bit-identical to a
direct in-process ``Owl.detect`` at any worker count, across worker
deaths, because the terminal unit *is* an ``Owl.detect`` against the
store the fleet warmed.
"""

from repro.service.address import parse_connect
from repro.service.api import ServiceAPI
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig, TenantQuota
from repro.service.execute import execute_unit
from repro.service.fleet import WorkerFleet
from repro.service.queue import JobQueue
from repro.service.scheduler import CampaignScheduler, campaign_identity
from repro.service.types import (
    CampaignResults, CampaignStatus, ServiceOverview, SubmitReceipt,
    WatchEvent)
from repro.service.units import WorkUnit
from repro.service.worker import worker_loop

__all__ = [
    "CampaignResults",
    "CampaignScheduler",
    "CampaignStatus",
    "JobQueue",
    "ServiceAPI",
    "ServiceClient",
    "ServiceConfig",
    "ServiceOverview",
    "SubmitReceipt",
    "TenantQuota",
    "WatchEvent",
    "WorkUnit",
    "WorkerFleet",
    "campaign_identity",
    "execute_unit",
    "parse_connect",
    "worker_loop",
]
