"""Frozen result types of the redesigned service client API.

:class:`~repro.service.client.ServiceClient` returns these instead of
raw protocol dicts: every field the wire carries, typed and immutable,
identical over the JSON-lines socket and the HTTP front end (the
transports serialise the same payloads, so the dataclasses are
transport-blind by construction).  The raw dicts remain reachable
through the deprecated module-level helpers for one release.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ServiceError

#: Stages a campaign can rest in when terminal.
_TERMINAL_STAGES = ("complete", "failed")


@dataclass(frozen=True)
class SubmitReceipt:
    """What ``submit`` hands back: the campaign's identity coordinates."""

    campaign: str
    workload: str
    tenant: str

    @classmethod
    def from_response(cls, response: Dict) -> "SubmitReceipt":
        return cls(campaign=str(response["campaign"]),
                   workload=str(response.get("workload", "")),
                   tenant=str(response.get("tenant", "anonymous")))


@dataclass(frozen=True)
class CampaignStatus:
    """One campaign's scheduler-side status row."""

    campaign: str
    workload: str
    stage: str
    tenant: str = "anonymous"
    pending_units: int = 0
    backlog_units: int = 0
    degradations: int = 0
    coalesced_into: Optional[str] = None
    error: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.stage in _TERMINAL_STAGES

    @property
    def complete(self) -> bool:
        return self.stage == "complete"

    @property
    def failed(self) -> bool:
        return self.stage == "failed"

    @classmethod
    def from_row(cls, row: Dict) -> "CampaignStatus":
        return cls(campaign=str(row.get("cid", "")),
                   workload=str(row.get("workload", "")),
                   stage=str(row.get("stage", "")),
                   tenant=str(row.get("tenant", "anonymous")),
                   pending_units=int(row.get("pending_units", 0)),
                   backlog_units=int(row.get("backlog_units", 0)),
                   degradations=int(row.get("degradations", 0)),
                   coalesced_into=row.get("coalesced_into"),
                   error=row.get("error"))


@dataclass(frozen=True)
class FleetStatus:
    """The serving fleet's worker accounting."""

    live_workers: Tuple[str, ...] = ()
    spawned: int = 0
    restarts: int = 0


@dataclass(frozen=True)
class TenantStatus:
    """One tenant's admission accounting."""

    tenant: str
    active_campaigns: int = 0
    inflight_units: int = 0
    backlog_units: int = 0
    weight: float = 1.0


@dataclass(frozen=True)
class ServiceOverview:
    """Everything ``owl status`` shows: campaigns, fleet, tenants."""

    campaigns: Dict[str, CampaignStatus] = field(default_factory=dict)
    fleet: Optional[FleetStatus] = None
    tenants: Dict[str, TenantStatus] = field(default_factory=dict)
    events: int = 0

    @classmethod
    def from_response(cls, status: Dict) -> "ServiceOverview":
        campaigns = {cid: CampaignStatus.from_row(row)
                     for cid, row in (status.get("campaigns") or {}).items()}
        fleet_raw = status.get("fleet") or {}
        fleet = None
        if fleet_raw:
            fleet = FleetStatus(
                live_workers=tuple(fleet_raw.get("live_workers", ())),
                spawned=int(fleet_raw.get("spawned", 0)),
                restarts=int(fleet_raw.get("restarts", 0)))
        tenants = {
            name: TenantStatus(
                tenant=name,
                active_campaigns=int(row.get("active_campaigns", 0)),
                inflight_units=int(row.get("inflight_units", 0)),
                backlog_units=int(row.get("backlog_units", 0)),
                weight=float(row.get("weight", 1.0)))
            for name, row in (status.get("tenants") or {}).items()}
        return cls(campaigns=campaigns, fleet=fleet, tenants=tenants,
                   events=len(status.get("events") or ()))


@dataclass(frozen=True)
class CampaignResults:
    """A campaign's results payload; ``report_json`` is byte-exact.

    The JSON string is exactly what the store serialised — the
    bit-identity contract's unit of comparison — so equality against a
    direct ``Owl.detect(...).report.to_json()`` is a plain ``==``.
    """

    campaign: str
    stage: str
    report_key: Optional[str] = None
    has_leaks: Optional[bool] = None
    report_json: Optional[str] = None
    error: Optional[str] = None

    @property
    def complete(self) -> bool:
        return self.stage == "complete"

    def report(self):
        """Parse ``report_json`` into a :class:`LeakageReport`."""
        from repro.core.report import LeakageReport
        if self.report_json is None:
            raise ServiceError(
                f"campaign {self.campaign} has no report "
                f"(stage {self.stage!r})")
        return LeakageReport.from_json(self.report_json)

    @classmethod
    def from_payload(cls, payload: Dict) -> "CampaignResults":
        return cls(campaign=str(payload.get("cid", "")),
                   stage=str(payload.get("stage", "")),
                   report_key=payload.get("report_key"),
                   has_leaks=payload.get("has_leaks"),
                   report_json=payload.get("report_json"),
                   error=payload.get("error"))


@dataclass(frozen=True)
class WatchEvent:
    """One line of a ``results --watch`` stream."""

    event: str
    campaign: str
    stage: Optional[str] = None
    pending_units: int = 0
    backlog_units: int = 0
    error: Optional[str] = None
    results: Optional[CampaignResults] = None

    @property
    def terminal(self) -> bool:
        return self.event in ("complete", "failed")

    @classmethod
    def from_line(cls, data: Dict) -> "WatchEvent":
        results = data.get("results")
        return cls(event=str(data.get("event", "")),
                   campaign=str(data.get("campaign", "")),
                   stage=data.get("stage"),
                   pending_units=int(data.get("pending_units", 0)),
                   backlog_units=int(data.get("backlog_units", 0)),
                   error=data.get("error"),
                   results=(CampaignResults.from_payload(results)
                            if results is not None else None))
