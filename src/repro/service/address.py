"""One connection-addressing scheme for every service transport.

The redesigned surface is a single ``--connect URL`` (CLI) /
``ServiceClient(url)`` (library) accepting::

    unix:///path/to/owl.sock     JSON-lines over a unix-domain socket
    tcp://host:port              JSON-lines over TCP
    http://host:port             the HTTP/JSON front end

Internally every transport still resolves to the historical ``Address``
tuple ``(kind, target)`` — ``("unix", path)``, ``("tcp", (host, port))``
or ``("http", (host, port))`` — so pre-redesign call sites keep working
unchanged.  A bare filesystem path (no scheme) is accepted as a unix
socket for convenience.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ConfigError

#: (kind, target): ("unix", path), ("tcp", (host, port)),
#: or ("http", (host, port)).
Address = Tuple[str, object]

#: Default TCP port of the HTTP front end when a URL omits one.
DEFAULT_HTTP_PORT = 8750


def parse_connect(url: str) -> Address:
    """``unix:///path`` / ``tcp://host:port`` / ``http://host:port``."""
    text = str(url).strip()
    if not text:
        raise ConfigError("empty --connect URL")
    if text.startswith("unix://"):
        path = text[len("unix://"):]
        if not path:
            raise ConfigError(
                f"unix URL {url!r} carries no socket path "
                f"(use unix:///absolute/path)")
        return ("unix", path)
    for scheme in ("tcp", "http"):
        prefix = f"{scheme}://"
        if not text.startswith(prefix):
            continue
        rest = text[len(prefix):].rstrip("/")
        host, sep, port_text = rest.rpartition(":")
        if not sep:
            if scheme == "http":
                return ("http", (rest or "127.0.0.1", DEFAULT_HTTP_PORT))
            raise ConfigError(
                f"tcp URL {url!r} needs an explicit port "
                f"(use tcp://host:port)")
        try:
            port = int(port_text)
        except ValueError:
            raise ConfigError(f"{scheme} URL {url!r} has a non-numeric port")
        return (scheme, (host or "127.0.0.1", port))
    if "://" in text:
        scheme = text.split("://", 1)[0]
        raise ConfigError(
            f"unsupported connection scheme {scheme!r} in {url!r} "
            f"(choose unix://, tcp://, or http://)")
    # a bare path reads as a unix socket, matching the old --socket flag
    return ("unix", text)


def format_address(address: Address) -> str:
    """The canonical ``--connect`` URL of an address tuple."""
    kind, target = address
    if kind == "unix":
        return f"unix://{target}"
    host, port = target  # type: ignore[misc]
    return f"{kind}://{host}:{port}"


def parse_address(socket_path: Optional[str] = None,
                  host: Optional[str] = None,
                  port: Optional[int] = None) -> Address:
    """Legacy ``--socket`` / ``--host`` / ``--port`` resolution."""
    if port is not None:
        return ("tcp", (host or "127.0.0.1", int(port)))
    if socket_path is None:
        raise ValueError("need either a unix socket path or a TCP port")
    return ("unix", str(socket_path))
