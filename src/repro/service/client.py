"""The detection service's client: typed, transport-blind, synchronous.

:class:`ServiceClient` is the public API — keyword-only construction,
frozen-dataclass returns (:class:`~repro.service.types.SubmitReceipt`,
:class:`~repro.service.types.CampaignStatus`,
:class:`~repro.service.types.CampaignResults`) — and speaks every
transport ``owl serve`` listens on: the JSON-lines unix/TCP socket and
the HTTP/JSON front end.  Pick the transport with a ``--connect``-style
URL (``unix:///run/owl.sock``, ``tcp://host:9000``,
``http://host:8750``); everything above the wire is identical because
both servers route through one :class:`~repro.service.api.ServiceAPI`.

Failures are typed too: bad credentials raise
:class:`~repro.errors.AuthError`, exhausted tenant quotas
:class:`~repro.errors.QuotaError`, an unreachable or hung-up service
:class:`~repro.errors.ServiceConnectionError`, and anything else the
service rejects :class:`~repro.errors.ServiceError` — all of them
:class:`~repro.errors.CampaignError` subclasses, so existing ``except``
clauses keep working.

The pre-redesign module-level helpers (``submit`` / ``status`` /
``results`` / ``wait_for`` returning raw protocol dicts) survive as
:class:`DeprecationWarning` shims over a throwaway client; ``request`` /
``ping`` / ``wait_until_up`` / ``shutdown`` remain plain functions since
scripts use them for liveness plumbing rather than results.
"""

from __future__ import annotations

import http.client
import json
import socket as socket_module
import time
import warnings
from typing import Dict, Iterator, Optional, Union

from repro.errors import (
    AuthError, CampaignError, QuotaError, ServiceConnectionError,
    ServiceError)
from repro.service.address import Address, format_address, parse_connect
from repro.service.types import (
    CampaignResults, CampaignStatus, ServiceOverview, SubmitReceipt,
    WatchEvent)

#: failure ``code`` → exception type raised client-side.
_ERROR_TYPES = {
    "auth": AuthError,
    "quota": QuotaError,
}


def _raise_for(response: Dict, op: str) -> None:
    """Raise the typed exception a failure envelope encodes."""
    if response.get("ok"):
        return
    error_type = _ERROR_TYPES.get(response.get("code", ""), ServiceError)
    raise error_type(
        f"service error for op {op!r}: "
        f"{response.get('error', 'unknown error')}")


class ServiceClient:
    """One service endpoint, any transport, typed results.

    ``connect`` is a URL string (``unix://``, ``tcp://``, ``http://``)
    or a legacy ``(kind, target)`` address tuple.  ``token`` is sent as
    the bearer credential on every request; ``tenant`` names the billing
    identity in *open* (tokenless) deployments and is ignored by
    authenticated servers, where the token is the identity.
    """

    def __init__(self, connect: Union[str, Address], *,
                 token: Optional[str] = None,
                 tenant: Optional[str] = None,
                 timeout: float = 30.0) -> None:
        if isinstance(connect, str):
            self.address = parse_connect(connect)
        else:
            self.address = connect
        self.token = token
        self.tenant = tenant
        self.timeout = timeout

    def __repr__(self) -> str:
        return (f"ServiceClient({format_address(self.address)!r}, "
                f"tenant={self.tenant!r})")

    # ------------------------------------------------------------------
    # the public verbs
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        """True when the service answers; never raises."""
        try:
            return bool(self._call({"op": "ping"}).get("ok"))
        except (OSError, CampaignError):
            return False

    def wait_until_up(self, *, timeout: float = 30.0,
                      poll: float = 0.1) -> None:
        deadline = time.time() + timeout
        while time.time() < deadline:
            if self.ping():
                return
            time.sleep(poll)
        raise ServiceConnectionError(
            f"service at {format_address(self.address)} did not come up "
            f"within {timeout:.0f}s")

    def submit(self, workload: str, *,
               config: Optional[Dict] = None) -> SubmitReceipt:
        response = self._checked({"op": "submit", "workload": workload,
                                  "config": config or {}})
        return SubmitReceipt.from_response(response)

    def status(self, campaign: str) -> CampaignStatus:
        response = self._checked({"op": "status", "campaign": campaign})
        return CampaignStatus.from_row(response["status"])

    def overview(self) -> ServiceOverview:
        response = self._checked({"op": "status", "campaign": None})
        return ServiceOverview.from_response(response["status"])

    def results(self, campaign: str) -> CampaignResults:
        response = self._checked({"op": "results", "campaign": campaign})
        return CampaignResults.from_payload(response["results"])

    def wait_for(self, campaign: str, *, timeout: float = 300.0,
                 poll: float = 0.1) -> CampaignStatus:
        """Poll until the campaign is terminal; returns its final status."""
        deadline = time.time() + timeout
        while True:
            row = self.status(campaign)
            if row.done:
                return row
            if time.time() > deadline:
                raise ServiceError(
                    f"campaign {campaign} still in stage {row.stage!r} "
                    f"after {timeout:.0f}s")
            time.sleep(poll)

    def watch(self, campaign: str, *,
              timeout: Optional[float] = None) -> Iterator[WatchEvent]:
        """Stream status transitions until the campaign is terminal.

        The connection is held open; the first event reports the current
        stage (so a reconnect re-synchronises), the last carries the
        full results payload.  A mid-stream hang-up raises
        :class:`ServiceConnectionError` — reconnect by calling ``watch``
        again.
        """
        for line in self._stream(campaign, timeout=timeout):
            data = json.loads(line.decode("utf-8"))
            _raise_for(data, "watch")
            event = WatchEvent.from_line(data)
            yield event
            if event.terminal:
                return  # the socket stays open for further requests
        raise ServiceConnectionError(
            f"watch stream for campaign {campaign} ended before a "
            f"terminal event (service hung up)")

    def shutdown(self) -> None:
        self._checked({"op": "shutdown"})

    # ------------------------------------------------------------------
    # transports
    # ------------------------------------------------------------------

    def _call(self, payload: Dict) -> Dict:
        request = self._credentialed(payload)
        kind = self.address[0]
        if kind == "http":
            return self._http_call(request)
        return self._socket_call(request)

    def _checked(self, payload: Dict) -> Dict:
        response = self._call(payload)
        _raise_for(response, str(payload.get("op")))
        return response

    def _credentialed(self, payload: Dict) -> Dict:
        request = dict(payload)
        if self.token is not None:
            request["token"] = self.token
        if self.tenant is not None:
            request.setdefault("tenant", self.tenant)
        return request

    # -- JSON-lines socket ---------------------------------------------

    def _connect_socket(self,
                        timeout: Optional[float] = None
                        ) -> socket_module.socket:
        kind, target = self.address
        effective = self.timeout if timeout is None else timeout
        try:
            if kind == "unix":
                sock = socket_module.socket(socket_module.AF_UNIX,
                                            socket_module.SOCK_STREAM)
                sock.settimeout(effective)
                sock.connect(str(target))
                return sock
            host, port = target  # type: ignore[misc]
            return socket_module.create_connection((host, port),
                                                   timeout=effective)
        except OSError as error:
            raise ServiceConnectionError(
                f"cannot reach service at {format_address(self.address)}: "
                f"{error}") from error

    def _socket_call(self, request: Dict) -> Dict:
        sock = self._connect_socket()
        try:
            sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
            chunks = []
            while True:
                data = sock.recv(65536)
                if not data:
                    break
                chunks.append(data)
                if data.endswith(b"\n"):
                    break
            raw = b"".join(chunks)
            if not raw:
                raise ServiceConnectionError(
                    "service closed the connection mid-request")
            return json.loads(raw.decode("utf-8"))
        finally:
            sock.close()

    def _socket_stream(self, campaign: str,
                       timeout: Optional[float]) -> Iterator[bytes]:
        sock = self._connect_socket(timeout=timeout)
        try:
            request = self._credentialed(
                {"op": "watch", "campaign": campaign})
            sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
            stream = sock.makefile("rb")
            for line in stream:
                if not line.strip():
                    continue
                yield line
        except socket_module.timeout as error:
            raise ServiceConnectionError(
                f"watch stream for campaign {campaign} timed out: "
                f"{error}") from error
        finally:
            sock.close()

    # -- HTTP/JSON ------------------------------------------------------

    _HTTP_ROUTES = {
        "ping": ("GET", "/v1/ping"),
        "submit": ("POST", "/v1/campaigns"),
        "shutdown": ("POST", "/v1/shutdown"),
    }

    def _http_connection(self, timeout: Optional[float] = None
                         ) -> http.client.HTTPConnection:
        host, port = self.address[1]  # type: ignore[misc]
        effective = self.timeout if timeout is None else timeout
        return http.client.HTTPConnection(host, port, timeout=effective)

    def _http_headers(self) -> Dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        if self.tenant is not None:
            headers["X-Owl-Tenant"] = self.tenant
        return headers

    def _http_route(self, request: Dict):
        op = request.get("op")
        if op == "status":
            cid = request.get("campaign")
            path = "/v1/campaigns" if cid is None \
                else f"/v1/campaigns/{cid}"
            return "GET", path, None
        if op == "results":
            return "GET", f"/v1/campaigns/{request['campaign']}/results", \
                None
        if op == "submit":
            body = json.dumps({"workload": request.get("workload"),
                               "config": request.get("config") or {}})
            return "POST", "/v1/campaigns", body.encode("utf-8")
        if op in self._HTTP_ROUTES:
            method, path = self._HTTP_ROUTES[op]
            return method, path, b"" if method == "POST" else None
        raise ServiceError(f"op {op!r} has no HTTP route")

    def _http_call(self, request: Dict) -> Dict:
        method, path, body = self._http_route(request)
        connection = self._http_connection()
        try:
            try:
                connection.request(method, path, body=body,
                                   headers=self._http_headers())
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as error:
                raise ServiceConnectionError(
                    f"cannot reach service at "
                    f"{format_address(self.address)}: {error}") from error
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ServiceError(
                    f"service returned non-JSON (HTTP {response.status}) "
                    f"for {method} {path}") from error
        finally:
            connection.close()

    def _http_stream(self, campaign: str,
                     timeout: Optional[float]) -> Iterator[bytes]:
        connection = self._http_connection(timeout=timeout)
        try:
            try:
                connection.request(
                    "GET", f"/v1/campaigns/{campaign}/watch",
                    headers=self._http_headers())
                response = connection.getresponse()
            except (OSError, http.client.HTTPException) as error:
                raise ServiceConnectionError(
                    f"cannot reach service at "
                    f"{format_address(self.address)}: {error}") from error
            if response.status != 200:
                data = json.loads(response.read().decode("utf-8"))
                _raise_for(data, "watch")
                raise ServiceError(f"watch rejected with HTTP "
                                   f"{response.status}")
            # http.client decodes chunked transfer transparently; an
            # abruptly dropped stream surfaces as IncompleteRead/OSError
            try:
                while True:
                    line = response.readline()
                    if not line:
                        return
                    yield line
            except (http.client.HTTPException, OSError) as error:
                raise ServiceConnectionError(
                    f"watch stream for campaign {campaign} dropped "
                    f"mid-flight: {error}") from error
        finally:
            connection.close()

    def _stream(self, campaign: str,
                timeout: Optional[float]) -> Iterator[bytes]:
        if self.address[0] == "http":
            return self._http_stream(campaign, timeout)
        return self._socket_stream(campaign, timeout)


# ----------------------------------------------------------------------
# legacy module-level API (dict-returning) — deprecated shims
# ----------------------------------------------------------------------


def request(address: Address, payload: Dict,
            timeout: float = 30.0) -> Dict:
    """Send one raw request dict, return the raw response dict."""
    client = ServiceClient(address, timeout=timeout)
    return client._call(payload)


def ping(address: Address, timeout: float = 5.0) -> bool:
    return ServiceClient(address, timeout=timeout).ping()


def wait_until_up(address: Address, timeout: float = 30.0,
                  poll: float = 0.1) -> None:
    ServiceClient(address).wait_until_up(timeout=timeout, poll=poll)


def shutdown(address: Address, timeout: float = 30.0) -> None:
    ServiceClient(address, timeout=timeout).shutdown()


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.service.client.{name}() is deprecated; use "
        f"ServiceClient (typed results) instead",
        DeprecationWarning, stacklevel=3)


def submit(address: Address, workload: str,
           config: Optional[Dict] = None, timeout: float = 30.0) -> str:
    _deprecated("submit")
    receipt = ServiceClient(address, timeout=timeout).submit(
        workload, config=config)
    return receipt.campaign


def status(address: Address, campaign: Optional[str] = None,
           timeout: float = 30.0) -> Dict:
    _deprecated("status")
    client = ServiceClient(address, timeout=timeout)
    response = client._checked({"op": "status", "campaign": campaign})
    return response["status"]


def results(address: Address, campaign: str,
            timeout: float = 30.0) -> Dict:
    _deprecated("results")
    client = ServiceClient(address, timeout=timeout)
    response = client._checked({"op": "results", "campaign": campaign})
    return response["results"]


def wait_for(address: Address, campaign: str, timeout: float = 300.0,
             poll: float = 0.1) -> Dict:
    """Deprecated: poll until terminal; returns the raw status row."""
    _deprecated("wait_for")
    client = ServiceClient(address)
    deadline = time.time() + timeout
    while True:
        response = client._checked({"op": "status", "campaign": campaign})
        row = response["status"]
        if row["stage"] in ("complete", "failed"):
            return row
        if time.time() > deadline:
            raise CampaignError(
                f"campaign {campaign} still in stage {row['stage']!r} "
                f"after {timeout:.0f}s")
        time.sleep(poll)
