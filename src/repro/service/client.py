"""Synchronous client for the detection service's JSON-lines protocol.

What ``owl submit`` / ``owl status`` / ``owl results`` (and the tests,
and the throughput benchmark) speak.  One request = one connection; the
service multiplexes many of these concurrently.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, Optional

from repro.errors import CampaignError
from repro.service.server import Address


def request(address: Address, payload: Dict,
            timeout: float = 30.0) -> Dict:
    """Send one request line, return the decoded response."""
    kind, target = address
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(str(target))
    else:
        host, port = target  # type: ignore[misc]
        sock = socket.create_connection((host, port), timeout=timeout)
    try:
        sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
            if data.endswith(b"\n"):
                break
        raw = b"".join(chunks)
        if not raw:
            raise CampaignError("service closed the connection mid-request")
        return json.loads(raw.decode("utf-8"))
    finally:
        sock.close()


def _checked(address: Address, payload: Dict, timeout: float) -> Dict:
    response = request(address, payload, timeout=timeout)
    if not response.get("ok"):
        raise CampaignError(
            f"service error for op {payload.get('op')!r}: "
            f"{response.get('error', 'unknown error')}")
    return response


def ping(address: Address, timeout: float = 5.0) -> bool:
    try:
        return bool(request(address, {"op": "ping"},
                            timeout=timeout).get("ok"))
    except (OSError, CampaignError):
        return False


def wait_until_up(address: Address, timeout: float = 30.0,
                  poll: float = 0.1) -> None:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if ping(address):
            return
        time.sleep(poll)
    raise CampaignError(f"service at {address!r} did not come up within "
                        f"{timeout:.0f}s")


def submit(address: Address, workload: str,
           config: Optional[Dict] = None, timeout: float = 30.0) -> str:
    response = _checked(address, {"op": "submit", "workload": workload,
                                  "config": config or {}}, timeout)
    return str(response["campaign"])


def status(address: Address, campaign: Optional[str] = None,
           timeout: float = 30.0) -> Dict:
    return _checked(address, {"op": "status", "campaign": campaign},
                    timeout)["status"]


def results(address: Address, campaign: str,
            timeout: float = 30.0) -> Dict:
    return _checked(address, {"op": "results", "campaign": campaign},
                    timeout)["results"]


def shutdown(address: Address, timeout: float = 30.0) -> None:
    _checked(address, {"op": "shutdown"}, timeout)


def wait_for(address: Address, campaign: str, timeout: float = 300.0,
             poll: float = 0.1) -> Dict:
    """Poll until the campaign is terminal; returns its status row."""
    deadline = time.time() + timeout
    while True:
        row = status(address, campaign)
        if row["stage"] in ("complete", "failed"):
            return row
        if time.time() > deadline:
            raise CampaignError(
                f"campaign {campaign} still in stage {row['stage']!r} "
                f"after {timeout:.0f}s")
        time.sleep(poll)
