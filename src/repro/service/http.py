"""The HTTP/JSON front end: ``owl serve --connect http://host:port``.

A deliberately small HTTP/1.1 server on stdlib ``asyncio`` streams — no
third-party web framework, mirroring the JSON-lines socket server's
zero-dependency footprint.  Every route is a thin shim over the same
:class:`~repro.service.api.ServiceAPI` request schema the socket speaks,
so responses (including report bytes) are identical across transports::

    GET  /v1/ping                     liveness + auth mode
    POST /v1/campaigns                submit {workload, config}
    GET  /v1/campaigns                status of every campaign
    GET  /v1/campaigns/<cid>          status of one campaign
    GET  /v1/campaigns/<cid>/results  completed campaign's report payload
    GET  /v1/campaigns/<cid>/watch    chunked stream of status events
    POST /v1/shutdown                 stop fleet + server

Authentication is ``Authorization: Bearer <token>``; failures map to
real HTTP statuses through :data:`~repro.service.api.HTTP_STATUS`
(401 bad token, 404 unknown campaign, 429 quota exhausted).  ``watch``
responses use chunked transfer encoding, one JSON event per line, held
open until the campaign is terminal — ``owl results --watch`` over
HTTP.  Connections are single-request (``Connection: close``); the
service's request rate is bounded by campaign math, not socket churn.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.service.api import HTTP_STATUS, ServiceAPI, error_response

#: request-body cap: campaign submissions are small config dicts.
MAX_BODY_BYTES = 1 << 20
#: header-section cap, against garbage or non-HTTP clients.
MAX_HEADER_BYTES = 1 << 16

_REASONS = {200: "OK", 400: "Bad Request", 401: "Unauthorized",
            404: "Not Found", 405: "Method Not Allowed",
            429: "Too Many Requests", 500: "Internal Server Error"}


def _status_of(response: Dict) -> int:
    if response.get("ok"):
        return 200
    return HTTP_STATUS.get(response.get("code", "error"), 500)


class HttpFrontEnd:
    """Route HTTP requests into a :class:`ServiceAPI`."""

    def __init__(self, api: ServiceAPI, stopping: asyncio.Event) -> None:
        self.api = api
        self.stopping = stopping

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                await self._respond(writer, 400, {
                    "ok": False, "code": "bad_request",
                    "error": "malformed HTTP request"})
                return
            method, path, headers, body = parsed
            await self._route(writer, method, path, headers, body)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # client hung up; nothing to clean
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, Dict, bytes]]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            return None
        method, raw_path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            total += len(line)
            if total > MAX_HEADER_BYTES:
                return None
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1", "replace") \
                .partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            return None
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        if length:
            body = await reader.readexactly(length)
        path = raw_path.split("?", 1)[0]
        return method, path, headers, body

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _base_request(self, headers: Dict[str, str]) -> Dict:
        request: Dict = {}
        auth = headers.get("authorization", "")
        if auth.lower().startswith("bearer "):
            request["token"] = auth[len("bearer "):].strip()
        tenant = headers.get("x-owl-tenant")
        if tenant:
            request["tenant"] = tenant
        return request

    async def _route(self, writer: asyncio.StreamWriter, method: str,
                     path: str, headers: Dict[str, str],
                     body: bytes) -> None:
        request = self._base_request(headers)
        segments = [part for part in path.split("/") if part]
        if segments[:1] != ["v1"]:
            await self._respond(writer, 404, {
                "ok": False, "code": "not_found",
                "error": f"no route for {path!r} (API lives under /v1/)"})
            return
        route = segments[1:]
        if route == ["ping"] and method == "GET":
            await self._respond_api(writer, dict(request, op="ping"))
            return
        if route == ["shutdown"] and method == "POST":
            response = self.api.handle(dict(request, op="shutdown"))
            await self._respond(writer, _status_of(response),
                                {key: value
                                 for key, value in response.items()
                                 if key != "_shutdown"})
            if response.get("_shutdown"):
                self.stopping.set()
            return
        if route == ["campaigns"]:
            if method == "POST":
                payload = self._decode_body(body)
                if payload is None:
                    await self._respond(writer, 400, {
                        "ok": False, "code": "bad_request",
                        "error": "request body is not a JSON object"})
                    return
                await self._respond_api(writer, dict(
                    request, op="submit",
                    workload=payload.get("workload"),
                    config=payload.get("config") or {}))
                return
            if method == "GET":
                await self._respond_api(writer,
                                        dict(request, op="status"))
                return
        if len(route) == 2 and route[0] == "campaigns" and method == "GET":
            await self._respond_api(writer, dict(
                request, op="status", campaign=route[1]))
            return
        if len(route) == 3 and route[0] == "campaigns" and method == "GET":
            cid, leaf = route[1], route[2]
            if leaf == "results":
                await self._respond_api(writer, dict(
                    request, op="results", campaign=cid))
                return
            if leaf == "watch":
                await self._stream_watch(writer, request, cid)
                return
        await self._respond(writer, 405 if route else 404, {
            "ok": False, "code": "bad_request",
            "error": f"no route for {method} {path!r}"})

    @staticmethod
    def _decode_body(body: bytes) -> Optional[Dict]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    # ------------------------------------------------------------------
    # responses
    # ------------------------------------------------------------------

    async def _respond_api(self, writer: asyncio.StreamWriter,
                           request: Dict) -> None:
        response = self.api.handle(request)
        await self._respond(writer, _status_of(response), response)

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Dict) -> None:
        body = json.dumps(payload).encode("utf-8") + b"\n"
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _stream_watch(self, writer: asyncio.StreamWriter,
                            request: Dict, cid: str) -> None:
        """Chunked stream of watch events; ends when the campaign does."""
        try:
            self.api.authenticate(request.get("token"),
                                  request.get("tenant"))
        except Exception as error:  # noqa: BLE001 — protocol boundary
            response = error_response(error)
            await self._respond(writer, _status_of(response), response)
            return
        events = self.api.watch_events(cid)
        first = await events.__anext__()
        if not first.get("ok"):
            await self._respond(writer, _status_of(first), first)
            return
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head)
        await self._write_chunk(writer, first)
        async for event in events:
            await self._write_chunk(writer, event)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    @staticmethod
    async def _write_chunk(writer: asyncio.StreamWriter,
                           event: Dict) -> None:
        data = json.dumps(event).encode("utf-8") + b"\n"
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data
                     + b"\r\n")
        await writer.drain()
