"""Crash-safe, file-backed job queue shared by scheduler and workers.

The queue is a directory; every operation is an atomic filesystem
primitive, so any process can crash at any point without corrupting it:

* ``units/<uid>.json`` — the durable unit spec, written tmp+rename by the
  scheduler (re-queues rewrite it with a bumped attempt count);
* ``claims/<uid>.claim`` — a lease, created with ``O_CREAT | O_EXCL`` so
  exactly one worker wins a unit; its mtime is the heartbeat, and a claim
  older than the lease marks its worker dead;
* ``results/<uid>.json`` — the unit's outcome (``done`` payload or
  ``error``), written tmp+rename *before* the claim is released, so a
  unit is never both unclaimed and unfinished unless it really is;
* ``journal.jsonl`` — the scheduler's append-only event log (submit,
  enqueue, requeue, worker-lost, complete), the audit trail ``owl
  status`` summarises;
* ``campaigns/<cid>.json`` — submitted campaign specs, which is all
  :meth:`CampaignScheduler.recover` needs to resume after a scheduler
  crash (unit results on disk fast-forward the stage machine).

The same tmp+rename discipline as :mod:`repro.store.store`; ``tmp/`` is
inside the queue root so renames never cross filesystems.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.service.units import WorkUnit

#: Name of the cooperative shutdown sentinel file.
STOP_SENTINEL = "STOP"


class JobQueue:
    """One directory of durable units, leases, results and events."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.units_dir = self.root / "units"
        self.claims_dir = self.root / "claims"
        self.results_dir = self.root / "results"
        self.campaigns_dir = self.root / "campaigns"
        self.tmp_dir = self.root / "tmp"
        self.journal_path = self.root / "journal.jsonl"
        for path in (self.units_dir, self.claims_dir, self.results_dir,
                     self.campaigns_dir, self.tmp_dir):
            path.mkdir(parents=True, exist_ok=True)
        self._tmp_seq = 0

    # ------------------------------------------------------------------
    # atomic write primitive
    # ------------------------------------------------------------------

    def _write_json(self, path: Path, payload: Dict) -> None:
        self._tmp_seq += 1
        tmp = self.tmp_dir / f"{os.getpid()}.{self._tmp_seq}.{path.name}"
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    @staticmethod
    def _read_json(path: Path) -> Optional[Dict]:
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # a reader racing the writer's rename, or a torn claim file:
            # treat as not-there-yet; the poll loop will come back
            return None

    # ------------------------------------------------------------------
    # journal (scheduler-only writer)
    # ------------------------------------------------------------------

    def journal(self, event: str, **fields) -> None:
        record = {"event": event, "ts": time.time()}
        record.update(fields)
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def journal_events(self) -> List[Dict]:
        events = []
        try:
            with open(self.journal_path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        events.append(json.loads(line))
                    except json.JSONDecodeError:
                        continue  # torn trailing line from a crash
        except FileNotFoundError:
            pass
        return events

    # ------------------------------------------------------------------
    # units
    # ------------------------------------------------------------------

    def unit_path(self, uid: str) -> Path:
        return self.units_dir / f"{uid}.json"

    def save_unit(self, unit: WorkUnit) -> None:
        self._write_json(self.unit_path(unit.uid), unit.to_dict())

    def enqueue(self, unit: WorkUnit) -> bool:
        """Make a unit available; no-op if it already ran (recovery)."""
        if self.result(unit.uid) is not None:
            return False
        self.save_unit(unit)
        return True

    def load_unit(self, uid: str) -> Optional[WorkUnit]:
        data = self._read_json(self.unit_path(uid))
        return None if data is None else WorkUnit.from_dict(data)

    def pending_units(self) -> List[str]:
        """Unit ids with a spec on disk and no result yet, sorted."""
        uids = sorted(path.stem for path in self.units_dir.glob("*.json"))
        return [uid for uid in uids
                if not (self.results_dir / f"{uid}.json").exists()]

    # ------------------------------------------------------------------
    # claims (leases)
    # ------------------------------------------------------------------

    def claim_path(self, uid: str) -> Path:
        return self.claims_dir / f"{uid}.claim"

    def claim(self, uid: str, worker: str) -> bool:
        """Atomically lease a unit; exactly one caller wins."""
        try:
            fd = os.open(self.claim_path(uid),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            payload = json.dumps({"worker": worker, "pid": os.getpid(),
                                  "claimed_at": time.time()})
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def heartbeat(self, uid: str) -> None:
        try:
            os.utime(self.claim_path(uid))
        except FileNotFoundError:
            pass  # lease was revoked under us; the result write still wins

    def claim_info(self, uid: str) -> Optional[Dict]:
        path = self.claim_path(uid)
        info = self._read_json(path)
        if info is None:
            return None
        try:
            info["mtime"] = path.stat().st_mtime
        except FileNotFoundError:
            return None
        return info

    def claimed_units(self) -> List[str]:
        return sorted(path.stem for path in self.claims_dir.glob("*.claim"))

    def release(self, uid: str) -> None:
        try:
            os.unlink(self.claim_path(uid))
        except FileNotFoundError:
            pass

    def expired_claims(self, lease_seconds: float,
                       now: Optional[float] = None) -> List[str]:
        """Leases whose heartbeat went silent past the lease window."""
        now = time.time() if now is None else now
        expired = []
        for uid in self.claimed_units():
            try:
                mtime = self.claim_path(uid).stat().st_mtime
            except FileNotFoundError:
                continue
            if now - mtime > lease_seconds:
                expired.append(uid)
        return expired

    def claims_by_worker(self, worker: str) -> List[str]:
        held = []
        for uid in self.claimed_units():
            info = self.claim_info(uid)
            if info is not None and info.get("worker") == worker:
                held.append(uid)
        return held

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def result_path(self, uid: str) -> Path:
        return self.results_dir / f"{uid}.json"

    def complete(self, uid: str, payload: Dict, worker: str) -> None:
        self._write_json(self.result_path(uid),
                         {"status": "done", "worker": worker,
                          "payload": payload})
        self.release(uid)

    def fail(self, uid: str, error: str, worker: str) -> None:
        self._write_json(self.result_path(uid),
                         {"status": "error", "worker": worker,
                          "error": error})
        self.release(uid)

    def result(self, uid: str) -> Optional[Dict]:
        return self._read_json(self.result_path(uid))

    def clear_result(self, uid: str) -> None:
        try:
            os.unlink(self.result_path(uid))
        except FileNotFoundError:
            pass

    def requeue(self, uid: str) -> Optional[WorkUnit]:
        """Revoke a lease and re-offer the unit with a bumped attempt."""
        unit = self.load_unit(uid)
        if unit is None:
            return None
        unit.attempts += 1
        self.release(uid)
        self.clear_result(uid)
        self.save_unit(unit)
        return unit

    # ------------------------------------------------------------------
    # campaigns + shutdown
    # ------------------------------------------------------------------

    def save_campaign(self, cid: str, spec: Dict) -> None:
        self._write_json(self.campaigns_dir / f"{cid}.json", spec)

    def load_campaigns(self) -> Dict[str, Dict]:
        specs = {}
        for path in sorted(self.campaigns_dir.glob("*.json")):
            data = self._read_json(path)
            if data is not None:
                specs[path.stem] = data
        return specs

    def request_stop(self) -> None:
        (self.root / STOP_SENTINEL).touch()

    def stop_requested(self) -> bool:
        return (self.root / STOP_SENTINEL).exists()

    def clear_stop(self) -> None:
        try:
            os.unlink(self.root / STOP_SENTINEL)
        except FileNotFoundError:
            pass
