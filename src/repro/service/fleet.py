"""Worker-process supervision: spawn, watch, restart, requeue.

:class:`WorkerFleet` is :class:`~repro.resilience.supervisor.ChunkSupervisor`
lifted to process granularity.  It spawns ``repro.service.worker``
subprocesses against one queue + store, and on every poll:

* a worker that exited (injected ``die_after``, OOM-kill, crash) is
  reported so the scheduler can revoke its leases and re-queue the units
  (:data:`~repro.resilience.events.WORKER_LOST` →
  :data:`~repro.resilience.events.UNIT_REQUEUED`);
* a replacement is spawned while the restart budget lasts — replacements
  never inherit the fault injection, mirroring how ``ChunkSupervisor``
  retries run fault-free;
* past the budget the fleet stops replacing and the scheduler's
  degradation ladder takes over
  (:data:`~repro.resilience.events.FLEET_TO_LOCAL`).

Worker stdout/stderr land in ``<queue>/logs/<worker>.log`` for CI
artefacts.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional


def _repro_src_dir() -> str:
    import repro
    return str(Path(repro.__file__).resolve().parents[1])


def worker_env() -> Dict[str, str]:
    """Subprocess environment with this repro checkout importable."""
    import os
    env = dict(os.environ)
    src = _repro_src_dir()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join(
        [src, existing])
    return env


class WorkerFleet:
    """A set of supervised worker subprocesses sharing one queue."""

    def __init__(self, queue_root, store_root, workers: int,
                 poll_seconds: float = 0.05,
                 lease_seconds: float = 30.0,
                 die_after: Optional[int] = None,
                 restart_budget: int = 8) -> None:
        self.queue_root = Path(queue_root)
        self.store_root = Path(store_root)
        self.workers = workers
        self.poll_seconds = poll_seconds
        self.lease_seconds = lease_seconds
        self.die_after = die_after
        self.restart_budget = restart_budget
        self.logs_dir = self.queue_root / "logs"
        self.procs: Dict[str, subprocess.Popen] = {}
        self._log_handles: Dict[str, object] = {}
        self.spawned = 0
        self.restarts = 0

    # ------------------------------------------------------------------

    def _spawn_one(self, inject_fault: bool) -> str:
        # hostname prefix keeps ids unique when remote workers share the
        # queue directory with this fleet (multi-host deployments)
        import socket as socket_module
        host = socket_module.gethostname().split(".")[0] or "host"
        worker_id = f"{host}-w{self.spawned}"
        self.spawned += 1
        command = [sys.executable, "-m", "repro.service.worker",
                   "--queue", str(self.queue_root),
                   "--store", str(self.store_root),
                   "--worker-id", worker_id,
                   "--poll", str(self.poll_seconds),
                   "--lease-seconds", str(self.lease_seconds)]
        if inject_fault and self.die_after is not None:
            command += ["--die-after", str(self.die_after)]
        self.logs_dir.mkdir(parents=True, exist_ok=True)
        log = open(self.logs_dir / f"{worker_id}.log", "w")
        self._log_handles[worker_id] = log
        self.procs[worker_id] = subprocess.Popen(
            command, env=worker_env(), stdout=log, stderr=subprocess.STDOUT)
        return worker_id

    def start(self) -> List[str]:
        return [self._spawn_one(inject_fault=True)
                for _ in range(self.workers)]

    def live_workers(self) -> List[str]:
        return [wid for wid, proc in self.procs.items()
                if proc.poll() is None]

    def poll(self) -> List[str]:
        """Reap dead workers, spawn replacements; returns the dead ids."""
        dead = []
        for worker_id, proc in list(self.procs.items()):
            if proc.poll() is None:
                continue
            dead.append(worker_id)
            del self.procs[worker_id]
            handle = self._log_handles.pop(worker_id, None)
            if handle is not None:
                handle.close()
        for _ in dead:
            if self.restarts >= self.restart_budget:
                continue  # budget spent: let units degrade to the scheduler
            self.restarts += 1
            self._spawn_one(inject_fault=False)
        return dead

    def stop(self, timeout: float = 5.0) -> None:
        for proc in self.procs.values():
            proc.terminate()
        for proc in self.procs.values():
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        for handle in self._log_handles.values():
            handle.close()
        self._log_handles.clear()
        self.procs.clear()
